#pragma once

#include <algorithm>
#include "common/check.hpp"

namespace neurfill {

/// Axis-aligned rectangle in micrometres, closed-open on both axes:
/// [x0, x1) x [y0, y1).  All layout geometry (wires, dummies, windows) is
/// rectangular, matching the Manhattan assumption of the filling flow.
struct Rect {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;

  Rect() = default;
  Rect(double x0_, double y0_, double x1_, double y1_)
      : x0(x0_), y0(y0_), x1(x1_), y1(y1_) {
    NF_CHECK(x1 >= x0 && y1 >= y0, "Rect: inverted extent [%g,%g)x[%g,%g)",
             x0, x1, y0, y1);
  }

  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }
  double area() const { return width() * height(); }
  double perimeter() const { return 2.0 * (width() + height()); }
  bool empty() const { return x1 <= x0 || y1 <= y0; }

  bool contains(double x, double y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }

  bool intersects(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }

  /// Intersection; empty (zero-area) rect when disjoint.
  Rect intersect(const Rect& o) const {
    const double ix0 = std::max(x0, o.x0);
    const double iy0 = std::max(y0, o.y0);
    const double ix1 = std::min(x1, o.x1);
    const double iy1 = std::min(y1, o.y1);
    if (ix1 <= ix0 || iy1 <= iy0) return Rect{};
    return Rect{ix0, iy0, ix1, iy1};
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.x0 == b.x0 && a.y0 == b.y0 && a.x1 == b.x1 && a.y1 == b.y1;
  }
};

/// Length of the part of `r`'s perimeter that lies strictly inside `clip`.
/// Used for window perimeter extraction: an edge on the window boundary is
/// shared with the neighbouring window and must not be double counted, so we
/// attribute boundary edges to the window containing the rect interior side.
double perimeter_inside(const Rect& r, const Rect& clip);

}  // namespace neurfill
