#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace neurfill {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< population variance (divides by n)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);
Summary summarize(std::span<const float> values);

/// p in [0, 100]; linear interpolation between order statistics.
double percentile(std::vector<double> values, double p);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; out-of-range
/// values are clamped into the end buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  Histogram(double lo, double hi, std::size_t bins);
  void add(double v);
  std::size_t total() const;
  /// Fraction of samples in buckets whose upper edge is <= x.
  double fraction_below(double x) const;
  double bucket_center(std::size_t b) const;
};

}  // namespace neurfill
