#pragma once

// Atomic, crash-safe file replacement (docs/robustness.md).
//
// Two entry points share one durability protocol — write the complete new
// content to `<path>.tmp`, fsync it, rename it over `path`, fsync the parent
// directory — so a crash (or SIGKILL) at any instant leaves either the
// complete old file or the complete new file, never a torn one:
//
//  * atomic_write_file()  — for content already assembled in memory (the
//    NFCP checkpoint image).
//  * AtomicFileWriter     — for content too large to assemble in memory
//    (a full-chip GLF): stream into the temp file, then commit().
//
// Both honor the catalogued fault sites `io.short_write` (the temp image is
// truncated and the commit fails; the old file stays intact) and `io.rename`
// (the final rename fails; the temp file is removed, the old file stays
// intact) — see the docs/robustness.md fault-site table.

#include <fstream>
#include <string>

#include "common/error.hpp"

namespace neurfill {

/// Atomically replaces `path` with the `n` bytes at `data`.  `subsystem`
/// names the caller in the structured error (e.g. "common.checkpoint").
[[nodiscard]] Expected<void> atomic_write_file(const std::string& path,
                                               const char* data, std::size_t n,
                                               const char* subsystem
                                               = "common.io");

/// Streaming variant: everything written to stream() lands in `<path>.tmp`;
/// commit() makes it durable and renames it into place.  Destroying an
/// uncommitted writer removes the temp file, so an abandoned write (an
/// exception mid-stream) cannot leave debris next to the target.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path, const char* subsystem
                            = "common.io");
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// False when the temp file could not be opened; commit() reports why.
  bool ok() const { return os_.good(); }
  std::ostream& stream() { return os_; }

  /// Flush + fsync + rename + directory fsync.  The writer is spent
  /// afterwards: further stream() writes are a caller bug.
  [[nodiscard]] Expected<void> commit();

 private:
  std::string path_;
  std::string tmp_;
  const char* subsystem_;
  std::ofstream os_;
  bool committed_ = false;
};

}  // namespace neurfill
