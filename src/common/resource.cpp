#include "common/resource.hpp"

#include <sys/resource.h>

namespace neurfill {

std::size_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is in kilobytes on Linux.
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

}  // namespace neurfill
