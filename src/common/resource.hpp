#pragma once

#include <cstddef>

namespace neurfill {

/// Peak resident set size of this process in bytes (Linux getrusage).  Used
/// for the memory column of the Table III reproduction.
std::size_t peak_rss_bytes();

}  // namespace neurfill
