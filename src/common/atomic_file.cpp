#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

#include "common/fault.hpp"

namespace neurfill {

namespace {

std::string errno_text() {
  // std::strerror shares a static buffer across threads; the error_code
  // route is reentrant.
  return std::error_code(errno, std::generic_category()).message();
}

Error io_error(const char* subsystem, const std::string& path,
               const std::string& what) {
  return Error(ErrorCode::kIo, subsystem, "'" + path + "': " + what);
}

void fsync_parent_dir(const std::string& path) {
  // Durability of the rename itself.  Best-effort: a directory that cannot
  // be fsynced (e.g. some tmpfs variants) does not fail the commit.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Writes the full buffer to an fd, fsyncs, closes.  Returns "" on success,
/// an error description otherwise.  The io.short_write fault site drops the
/// tail of the buffer and reports failure, modeling a full disk / torn write.
std::string write_all_sync(int fd, const char* data, std::size_t n) {
  std::size_t total = n;
  if (NF_FAULT("io.short_write")) total = n / 2;
  std::size_t off = 0;
  while (off < total) {
    const ssize_t w = ::write(fd, data + off, total - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return "write failed: " + errno_text();
    }
    off += static_cast<std::size_t>(w);
  }
  if (total < n)
    return "short write (injected): wrote " + std::to_string(total) + " of " +
           std::to_string(n) + " bytes";
  if (::fsync(fd) != 0) return "fsync failed: " + errno_text();
  return std::string();
}

/// The shared tail of both entry points: rename the durable temp file over
/// the target and fsync the directory.  The io.rename fault site models a
/// crash between temp write and rename acknowledgment.
[[nodiscard]] Expected<void> rename_into_place(const char* subsystem,
                                               const std::string& tmp,
                                               const std::string& path) {
  if (NF_FAULT("io.rename")) {
    ::unlink(tmp.c_str());
    return io_error(subsystem, path,
                    "rename from '" + tmp + "' failed: injected");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    return io_error(subsystem, path, "rename from '" + tmp + "' failed: " + why);
  }
  fsync_parent_dir(path);
  return Expected<void>();
}

}  // namespace

[[nodiscard]] Expected<void> atomic_write_file(const std::string& path,
                                               const char* data, std::size_t n,
                                               const char* subsystem) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error(subsystem, tmp, "open failed: " + errno_text());
  const std::string write_err = write_all_sync(fd, data, n);
  ::close(fd);
  if (!write_err.empty()) {
    ::unlink(tmp.c_str());
    return io_error(subsystem, tmp, write_err);
  }
  return rename_into_place(subsystem, tmp, path);
}

AtomicFileWriter::AtomicFileWriter(std::string path, const char* subsystem)
    : path_(std::move(path)), tmp_(path_ + ".tmp"), subsystem_(subsystem) {
  os_.open(tmp_, std::ios::binary | std::ios::trunc);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    os_.close();
    ::unlink(tmp_.c_str());
  }
}

[[nodiscard]] Expected<void> AtomicFileWriter::commit() {
  if (!os_.is_open())
    return io_error(subsystem_, tmp_, "open failed: cannot create temp file");
  os_.flush();
  const bool stream_bad = !os_.good();
  os_.close();
  if (stream_bad) {
    ::unlink(tmp_.c_str());
    return io_error(subsystem_, tmp_, "stream write failed");
  }
  // Re-open by name to fsync: ofstream exposes no fd.  The io.short_write
  // site models the torn write here by truncating the streamed temp file.
  const int fd = ::open(tmp_.c_str(), O_WRONLY);
  if (fd < 0) {
    const std::string why = errno_text();
    ::unlink(tmp_.c_str());
    return io_error(subsystem_, tmp_, "reopen for fsync failed: " + why);
  }
  if (NF_FAULT("io.short_write")) {
    const off_t size = ::lseek(fd, 0, SEEK_END);
    const std::string what =
        "short write (injected): wrote " + std::to_string(size / 2) + " of " +
        std::to_string(size) + " bytes";
    const int trunc_rc = ::ftruncate(fd, size / 2);
    static_cast<void>(trunc_rc);
    ::close(fd);
    ::unlink(tmp_.c_str());
    return io_error(subsystem_, tmp_, what);
  }
  const bool synced = ::fsync(fd) == 0;
  const std::string sync_err = synced ? std::string() : errno_text();
  ::close(fd);
  if (!synced) {
    ::unlink(tmp_.c_str());
    return io_error(subsystem_, tmp_, "fsync failed: " + sync_err);
  }
  committed_ = true;
  return rename_into_place(subsystem_, tmp_, path_);
}

}  // namespace neurfill
