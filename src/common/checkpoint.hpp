#pragma once

// Crash-safe sectioned checkpoint container (docs/robustness.md).
//
// On-disk layout (little-endian, the only platform we target):
//
//   char  magic[4] = "NFCP"
//   u32   version  = 1
//   u32   section_count
//   section*: u32 name_len, name bytes,
//             u64 payload_len, u32 crc32(payload), payload bytes
//
// Writing is atomic: the whole image is assembled in memory, written to
// `<path>.tmp`, fsync'd, and renamed over `path` (the directory is fsync'd
// after the rename).  A crash — or a SIGKILL — at any point leaves either
// the complete old file or the complete new file, never a torn one; a torn
// *image* (power loss between fsync and rename acknowledgment, a stray
// truncation, a flipped bit) is rejected at open() with a structured
// nf::Error naming the file, the failing section, and the expected vs.
// actual checksum.
//
// Fault sites (docs/robustness.md catalog): io.short_write truncates the
// temp image and fails the commit; io.rename fails the final rename (the
// old file stays intact); io.short_read truncates the in-memory image on
// open (exercising the truncation rejection); checkpoint.alloc fails the
// image allocation with kResourceExhausted.

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace neurfill {

/// zlib-compatible CRC-32 (polynomial 0xEDB88320, reflected), so external
/// tooling (python zlib.crc32) can produce and verify our checksums.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Append-only little-endian byte stream for section payloads.
class ByteWriter {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f32(float v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }
  void f32_vec(const std::vector<float>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(float));
  }
  void raw(const void* p, std::size_t n) {
    if (n == 0) return;  // empty vectors hand us data() == nullptr
    const char* c = static_cast<const char*>(p);
    bytes_.insert(bytes_.end(), c, c + n);
  }
  std::vector<char> take() { return std::move(bytes_); }

 private:
  std::vector<char> bytes_;
};

/// Matching reader.  Reads past the end set a sticky failure flag and
/// return zero values; callers check ok() once after the last read instead
/// of threading Expected through every field.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<char>& bytes) : bytes_(bytes) {}

  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int64_t i64() { return fixed<std::int64_t>(); }
  float f32() { return fixed<float>(); }
  double f64() { return fixed<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return std::string();
    return std::string(bytes_.data() + pos_ - n, n);
  }
  std::vector<double> f64_vec() { return vec<double>(); }
  std::vector<float> f32_vec() { return vec<float>(); }
  bool raw(void* p, std::size_t n) {
    if (!take(n)) return false;
    if (n != 0) std::memcpy(p, bytes_.data() + pos_ - n, n);
    return true;
  }

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == bytes_.size(); }

 private:
  template <typename T>
  T fixed() {
    T v{};
    raw(&v, sizeof(v));
    return v;
  }
  template <typename T>
  std::vector<T> vec() {
    const std::uint64_t n = u64();
    // Sanity bound: a corrupt length must not drive a giant allocation.
    if (!ok_ || n * sizeof(T) > bytes_.size() - pos_) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    raw(v.data(), v.size() * sizeof(T));
    return v;
  }
  bool take(std::size_t n) {
    if (!ok_ || n > bytes_.size() - pos_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::vector<char>& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Assembles a checkpoint in memory; commit() makes it durable atomically.
class CheckpointWriter {
 public:
  /// Adds a section (duplicate names are a caller bug, checked).
  void add_section(const std::string& name, std::vector<char> payload);

  /// Atomic write-to-temp + fsync + rename + directory fsync.
  [[nodiscard]] Expected<void> commit(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::vector<char>>> sections_;
};

/// Opens, fully reads, and CRC-validates a checkpoint.  All corruption is
/// detected at open time so later section() calls cannot fail midway
/// through a restore.
class CheckpointReader {
 public:
  [[nodiscard]] static Expected<CheckpointReader> open(const std::string& path);

  bool has_section(const std::string& name) const;
  /// The payload of `name`; kCorrupt error naming the file when absent
  /// (an absent section in a validated file means a format mismatch).
  [[nodiscard]] Expected<const std::vector<char>*> section(const std::string& name) const;
  const std::vector<std::string>& section_names() const { return names_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<std::string> names_;  ///< file order
  std::vector<std::pair<std::string, std::vector<char>>> sections_;
};

}  // namespace neurfill
