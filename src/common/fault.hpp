#pragma once

// Deterministic fault injection (docs/robustness.md).
//
// Every graceful-degradation path in the pipeline has a *named site* where
// a test can force the failure it recovers from:
//
//   if (NF_FAULT("contact.stall")) { /* pretend the solve did not converge */ }
//
// Sites are armed per-process, by API (fault::arm) or by environment
// (NEURFILL_FAULTS="contact.stall=after:1;sqp.poison=hit:2"), with three
// trigger modes:
//   hit:N    fire exactly on the Nth hit of the site (1-based), once
//   after:N  fire on every hit >= N (persistent failure)
//   prob:P   fire independently per hit with probability P; the decision for
//            hit k is a pure function of (seed, site, k), so the *set* of
//            firing hit indices is deterministic even when hits race across
//            threads (which thread draws hit k may vary; the verdict for
//            hit k cannot).  Seed comes from arm_prob / NEURFILL_FAULTS_SEED.
//
// Gating mirrors the obs pattern (src/obs/trace.hpp): with the CMake option
// NEURFILL_ENABLE_FAULTS=OFF the macro compiles to a constant `false` and
// every injection branch folds away; with it ON (the default), an unarmed
// process pays one relaxed atomic load per site hit.  Hit counters are only
// maintained while at least one site is armed.

#include <cstdint>
#include <string>

namespace neurfill::fault {

/// True when at least one site is armed (one relaxed atomic load).
bool any_armed();

/// Arms `site` to fire exactly on the nth hit (1-based).
void arm_hit(const std::string& site, std::uint64_t nth);
/// Arms `site` to fire on every hit >= nth (1-based).
void arm_after(const std::string& site, std::uint64_t nth);
/// Arms `site` to fire per-hit with probability p under `seed`.
void arm_prob(const std::string& site, double p, std::uint64_t seed = 0);

/// Disarms one site / every site (counters reset).
void disarm(const std::string& site);
void disarm_all();

/// Hits observed for `site` since it was armed (0 when not armed).
std::uint64_t hits(const std::string& site);
/// Times `site` actually fired since it was armed.
std::uint64_t fired(const std::string& site);

/// Parses a NEURFILL_FAULTS-style spec ("site=mode:arg;site2=...") and arms
/// accordingly.  Returns false (arming nothing further) on a malformed spec.
bool configure(const std::string& spec, std::uint64_t seed = 0);

/// Reads NEURFILL_FAULTS / NEURFILL_FAULTS_SEED from the environment.
/// Called once from should_inject's slow path; safe to call again.
void configure_from_env();

/// The hot-path decision.  Prefer the NF_FAULT macro.
bool should_inject(const char* site);

}  // namespace neurfill::fault

#if !defined(NEURFILL_DISABLE_FAULTS)

/// True when the named fault site should fire now.  Sites are string
/// literals, catalogued in docs/robustness.md.
#define NF_FAULT(site) (::neurfill::fault::should_inject(site))

#else  // NEURFILL_DISABLE_FAULTS

/// Compiled out: a constant false folds the whole injection branch away.
#define NF_FAULT(site) false

#endif  // NEURFILL_DISABLE_FAULTS
