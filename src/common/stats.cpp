#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace neurfill {

namespace {
template <typename T>
Summary summarize_impl(std::span<const T> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = s.max = static_cast<double>(values[0]);
  for (const T v : values) {
    const double d = static_cast<double>(v);
    sum += d;
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
  }
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (const T v : values) {
    const double d = static_cast<double>(v) - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(s.count);
  s.stddev = std::sqrt(s.variance);
  return s;
}
}  // namespace

Summary summarize(std::span<const double> values) {
  return summarize_impl(values);
}
Summary summarize(std::span<const float> values) { return summarize_impl(values); }

double percentile(std::vector<double> values, double p) {
  NF_CHECK(!values.empty(), "percentile of an empty sample");
  std::sort(values.begin(), values.end());
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - std::floor(rank);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0) {
  NF_CHECK(bins > 0 && hi_ > lo_, "Histogram: bins=%zu lo=%g hi=%g", bins,
           lo_, hi_);
}

void Histogram::add(double v) {
  const double t = (v - lo) / (hi - lo);
  auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0,
                                 static_cast<std::ptrdiff_t>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(b)];
}

std::size_t Histogram::total() const {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

double Histogram::fraction_below(double x) const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double upper =
        lo + (hi - lo) * static_cast<double>(b + 1) / static_cast<double>(counts.size());
    if (upper <= x) acc += counts[b];
  }
  return static_cast<double>(acc) / static_cast<double>(n);
}

double Histogram::bucket_center(std::size_t b) const {
  return lo + (hi - lo) * (static_cast<double>(b) + 0.5) /
                  static_cast<double>(counts.size());
}

}  // namespace neurfill
