#include "common/cli.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace neurfill {

namespace {

/// strtol-family wrappers skip leading whitespace; we do not.
bool leading_space(const std::string& text) {
  return !text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0;
}

std::string join_choices(const std::vector<std::string>& choices) {
  std::string s;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) s += '|';
    s += choices[i];
  }
  return s;
}

}  // namespace

bool parse_int_strict(const std::string& text, int* out) {
  if (text.empty() || leading_space(text)) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max())
    return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_uint64_strict(const std::string& text, std::uint64_t* out) {
  // strtoull accepts "-1" and wraps; reject any sign-negative input first.
  if (text.empty() || leading_space(text) || text.front() == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double_strict(const std::string& text, double* out) {
  if (text.empty() || leading_space(text)) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  if (!std::isfinite(v)) return false;  // rejects "inf"/"nan" spellings too
  *out = v;
  return true;
}

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_positional(const std::string& name,
                               const std::string& help, std::string* out) {
  positionals_.push_back({name, help, out});
}

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         bool* out) {
  Option o;
  o.name = name;
  o.help = help;
  o.kind = Option::Kind::kFlag;
  o.flag_out = out;
  options_.push_back(std::move(o));
}

void ArgParser::add_string(const std::string& name, const std::string& metavar,
                           const std::string& help, std::string* out) {
  Option o;
  o.name = name;
  o.metavar = metavar;
  o.help = help;
  o.kind = Option::Kind::kString;
  o.string_out = out;
  options_.push_back(std::move(o));
}

void ArgParser::add_choice(const std::string& name,
                           std::vector<std::string> choices,
                           const std::string& help, std::string* out) {
  Option o;
  o.name = name;
  o.metavar = join_choices(choices);
  o.help = help;
  o.kind = Option::Kind::kChoice;
  o.string_out = out;
  o.choices = std::move(choices);
  options_.push_back(std::move(o));
}

void ArgParser::add_int(const std::string& name, const std::string& metavar,
                        const std::string& help, int* out) {
  Option o;
  o.name = name;
  o.metavar = metavar;
  o.help = help;
  o.kind = Option::Kind::kInt;
  o.int_out = out;
  options_.push_back(std::move(o));
}

void ArgParser::add_uint64(const std::string& name, const std::string& metavar,
                           const std::string& help, std::uint64_t* out) {
  Option o;
  o.name = name;
  o.metavar = metavar;
  o.help = help;
  o.kind = Option::Kind::kUint64;
  o.uint64_out = out;
  options_.push_back(std::move(o));
}

void ArgParser::add_double(const std::string& name, const std::string& metavar,
                           const std::string& help, double* out) {
  Option o;
  o.name = name;
  o.metavar = metavar;
  o.help = help;
  o.kind = Option::Kind::kDouble;
  o.double_out = out;
  options_.push_back(std::move(o));
}

const ArgParser::Option* ArgParser::find_option(const std::string& name) const {
  for (const Option& o : options_)
    if (o.name == name) return &o;
  return nullptr;
}

bool ArgParser::assign(const Option& opt, const std::string& value,
                       std::ostream& err) const {
  const char* expected = nullptr;
  switch (opt.kind) {
    case Option::Kind::kFlag:
      return true;  // handled by the caller; flags never reach assign
    case Option::Kind::kString:
      *opt.string_out = value;
      return true;
    case Option::Kind::kChoice:
      for (const std::string& c : opt.choices)
        if (c == value) {
          *opt.string_out = value;
          return true;
        }
      expected = "one of ";
      break;
    case Option::Kind::kInt:
      if (parse_int_strict(value, opt.int_out)) return true;
      expected = "an integer";
      break;
    case Option::Kind::kUint64:
      if (parse_uint64_strict(value, opt.uint64_out)) return true;
      expected = "a non-negative integer";
      break;
    case Option::Kind::kDouble:
      if (parse_double_strict(value, opt.double_out)) return true;
      expected = "a number";
      break;
  }
  err << program_ << ": invalid value '" << value << "' for " << opt.name
      << " (expected " << expected
      << (opt.kind == Option::Kind::kChoice ? opt.metavar : "") << ")\n"
      << usage();
  return false;
}

ArgParser::Result ArgParser::parse(int argc, const char* const* argv,
                                   std::ostream& out,
                                   std::ostream& err) const {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out << usage();
      return Result::kHelp;
    }
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      std::string name = arg;
      std::string value;
      bool has_inline_value = false;
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        name = arg.substr(0, eq);
        value = arg.substr(eq + 1);
        has_inline_value = true;
      }
      const Option* opt = find_option(name);
      if (opt == nullptr) {
        err << program_ << ": unknown option '" << name << "'\n" << usage();
        return Result::kError;
      }
      if (opt->kind == Option::Kind::kFlag) {
        if (has_inline_value) {
          err << program_ << ": " << name << " does not take a value\n"
              << usage();
          return Result::kError;
        }
        *opt->flag_out = true;
        continue;
      }
      if (!has_inline_value) {
        if (i + 1 >= argc) {
          err << program_ << ": option " << name << " requires a value ("
              << opt->metavar << ")\n"
              << usage();
          return Result::kError;
        }
        value = argv[++i];
      }
      if (!assign(*opt, value, err)) return Result::kError;
      continue;
    }
    if (next_positional >= positionals_.size()) {
      err << program_ << ": unexpected argument '" << arg << "'\n" << usage();
      return Result::kError;
    }
    *positionals_[next_positional++].out = arg;
  }
  if (next_positional < positionals_.size()) {
    err << program_ << ": missing required argument <"
        << positionals_[next_positional].name << ">\n"
        << usage();
    return Result::kError;
  }
  return Result::kOk;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_;
  for (const Positional& p : positionals_) os << " <" << p.name << ">";
  if (!options_.empty()) os << " [options]";
  os << "\n\n" << description_ << "\n";

  // Two-column layout: pad the left column to the widest entry.
  std::size_t width = sizeof("-h, --help") - 1;
  for (const Positional& p : positionals_)
    width = std::max(width, p.name.size() + 2);  // "<name>"
  std::vector<std::string> option_heads;
  option_heads.reserve(options_.size());
  for (const Option& o : options_) {
    std::string head = o.name;
    if (o.kind != Option::Kind::kFlag) head += " " + o.metavar;
    width = std::max(width, head.size());
    option_heads.push_back(std::move(head));
  }

  const auto row = [&](const std::string& head, const std::string& help) {
    os << "  " << head;
    for (std::size_t k = head.size(); k < width + 2; ++k) os << ' ';
    os << help << "\n";
  };
  if (!positionals_.empty()) {
    os << "\narguments:\n";
    for (const Positional& p : positionals_) row("<" + p.name + ">", p.help);
  }
  os << "\noptions:\n";
  for (std::size_t i = 0; i < options_.size(); ++i)
    row(option_heads[i], options_[i].help);
  row("-h, --help", "show this message and exit");
  return os.str();
}

void add_common_options(ArgParser& parser, CommonToolOptions* opts) {
  parser.add_int("--threads", "N",
                 "worker threads (0 = NEURFILL_THREADS/hardware default)",
                 &opts->threads);
  parser.add_string("--trace", "FILE",
                    "record tracing spans and write chrome://tracing JSON",
                    &opts->trace_path);
  parser.add_flag("--metrics", "print a metrics summary to stderr at exit",
                  &opts->metrics);
  parser.add_string("--metrics-json", "FILE",
                    "write the metrics summary as JSON", &opts->metrics_json_path);
  parser.add_choice("--log-level", {"debug", "info", "warn", "error"},
                    "log verbosity (default info)", &opts->log_level);
}

bool apply_common_options(const CommonToolOptions& opts, std::ostream& err) {
  if (opts.threads < 0) {
    err << "invalid --threads value " << opts.threads << " (must be >= 0)\n";
    return false;
  }
  if (opts.threads > 0) runtime::set_thread_count(opts.threads);

  LogLevel level = LogLevel::kInfo;
  if (opts.log_level == "debug") {
    level = LogLevel::kDebug;
  } else if (opts.log_level == "info") {
    level = LogLevel::kInfo;
  } else if (opts.log_level == "warn") {
    level = LogLevel::kWarn;
  } else if (opts.log_level == "error") {
    level = LogLevel::kError;
  } else {
    // Unreachable through add_common_options (choice-validated); guards
    // callers that fill the struct by hand.
    err << "invalid --log-level '" << opts.log_level << "'\n";
    return false;
  }
  set_log_level(level);

  if (!opts.trace_path.empty()) obs::set_tracing_enabled(true);
  if (opts.metrics || !opts.metrics_json_path.empty())
    obs::set_metrics_enabled(true);
  return true;
}

bool finish_common_options(const CommonToolOptions& opts) {
  bool ok = true;
  if (!opts.trace_path.empty()) {
    std::ofstream f(opts.trace_path);
    if (f) obs::write_chrome_trace(f);
    if (!f) {
      std::cerr << "cannot write trace to " << opts.trace_path << "\n";
      ok = false;
    }
  }
  if (opts.metrics) obs::write_metrics_text(std::cerr);
  if (!opts.metrics_json_path.empty()) {
    std::ofstream f(opts.metrics_json_path);
    if (f) obs::write_metrics_json(f);
    if (!f) {
      std::cerr << "cannot write metrics to " << opts.metrics_json_path
                << "\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace neurfill
