#include "common/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace neurfill::fault {

namespace {

enum class Mode { kHit, kAfter, kProb };

struct Site {
  Mode mode = Mode::kHit;
  std::uint64_t n = 1;      ///< hit / after threshold
  double p = 0.0;           ///< prob mode
  std::uint64_t seed = 0;   ///< prob mode
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Site> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Count of armed sites, readable without the lock.  should_inject bails on
/// zero with a single relaxed load — the entire cost of an unarmed build.
std::atomic<int> g_armed{0};
std::atomic<bool> g_env_loaded{false};

/// splitmix64-style mixer: the prob-mode verdict for (seed, site, hit) must
/// be a pure function so concurrent hits stay deterministic as a set.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_site(const char* site) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a
  for (const char* c = site; *c; ++c) {
    h ^= static_cast<unsigned char>(*c);
    h *= 0x100000001B3ull;
  }
  return h;
}

void arm(const std::string& site, Site s) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const bool fresh = r.sites.find(site) == r.sites.end();
  r.sites[site] = s;
  if (fresh) g_armed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

bool any_armed() { return g_armed.load(std::memory_order_relaxed) > 0; }

void arm_hit(const std::string& site, std::uint64_t nth) {
  Site s;
  s.mode = Mode::kHit;
  s.n = nth == 0 ? 1 : nth;
  arm(site, s);
}

void arm_after(const std::string& site, std::uint64_t nth) {
  Site s;
  s.mode = Mode::kAfter;
  s.n = nth == 0 ? 1 : nth;
  arm(site, s);
}

void arm_prob(const std::string& site, double p, std::uint64_t seed) {
  Site s;
  s.mode = Mode::kProb;
  s.p = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  s.seed = seed;
  arm(site, s);
}

void disarm(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.sites.erase(site) > 0)
    g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  g_armed.fetch_sub(static_cast<int>(r.sites.size()),
                    std::memory_order_relaxed);
  r.sites.clear();
}

std::uint64_t hits(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fired(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fired;
}

bool configure(const std::string& spec, std::uint64_t seed) {
  // "site=mode:arg;site=mode:arg" — modes hit:N, after:N, prob:P.
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    const std::size_t colon = entry.find(':', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || colon == std::string::npos || eq == 0)
      return false;
    const std::string site = entry.substr(0, eq);
    const std::string mode = entry.substr(eq + 1, colon - eq - 1);
    const std::string arg = entry.substr(colon + 1);
    char* parse_end = nullptr;
    if (mode == "hit" || mode == "after") {
      const unsigned long long n = std::strtoull(arg.c_str(), &parse_end, 10);
      if (arg.empty() || *parse_end != '\0') return false;
      if (mode == "hit")
        arm_hit(site, n);
      else
        arm_after(site, n);
    } else if (mode == "prob") {
      const double p = std::strtod(arg.c_str(), &parse_end);
      if (arg.empty() || *parse_end != '\0') return false;
      arm_prob(site, p, seed);
    } else {
      return false;
    }
  }
  return true;
}

void configure_from_env() {
  if (g_env_loaded.exchange(true)) return;
  // Read once while single-threaded, during fault-plan initialization.
  const char* spec = std::getenv("NEURFILL_FAULTS");  // NOLINT(concurrency-mt-unsafe)
  if (!spec || !*spec) return;
  std::uint64_t seed = 0;
  if (const char* s = std::getenv("NEURFILL_FAULTS_SEED"))  // NOLINT(concurrency-mt-unsafe)
    seed = std::strtoull(s, nullptr, 10);
  configure(spec, seed);
}

bool should_inject(const char* site) {
  // First call loads the environment spec; afterwards this is one exchange
  // that is always true.  Keeping it here (not in a static initializer)
  // makes the env path testable and order-independent.
  if (!g_env_loaded.load(std::memory_order_acquire)) configure_from_env();
  if (!any_armed()) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Site& s = it->second;
  const std::uint64_t hit = ++s.hits;  // 1-based
  bool fire = false;
  switch (s.mode) {
    case Mode::kHit:
      fire = hit == s.n;
      break;
    case Mode::kAfter:
      fire = hit >= s.n;
      break;
    case Mode::kProb:
      // Verdict is pure in (seed, site, hit index): deterministic as a set
      // regardless of which thread claims which hit.
      fire = static_cast<double>(mix(s.seed ^ hash_site(site) ^ hit) >> 11) *
                 0x1.0p-53 <
             s.p;
      break;
  }
  if (fire) ++s.fired;
  return fire;
}

}  // namespace neurfill::fault
