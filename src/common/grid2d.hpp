#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace neurfill {

/// Dense row-major 2-D container used for window grids (heights, densities,
/// pressures, fill amounts).  Indexing is (row, col) = (i, j); row i maps to
/// the chip's y direction, column j to x.
template <typename T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) {
    NF_CHECK_BOUNDS(i, rows_);
    NF_CHECK_BOUNDS(j, cols_);
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    NF_CHECK_BOUNDS(i, rows_);
    NF_CHECK_BOUNDS(j, cols_);
    return data_[i * cols_ + j];
  }

  /// Flat access in row-major order; used when a grid is treated as a vector
  /// of optimization variables.
  T& operator[](std::size_t k) {
    NF_CHECK_BOUNDS(k, data_.size());
    return data_[k];
  }
  const T& operator[](std::size_t k) const {
    NF_CHECK_BOUNDS(k, data_.size());
    return data_[k];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  typename std::vector<T>::iterator begin() { return data_.begin(); }
  typename std::vector<T>::iterator end() { return data_.end(); }
  typename std::vector<T>::const_iterator begin() const { return data_.begin(); }
  typename std::vector<T>::const_iterator end() const { return data_.end(); }

  void fill(T v) { data_.assign(data_.size(), v); }

  /// Copies the `rows x cols` rectangle whose top-left corner is (i0, j0)
  /// into a fresh grid.  The rectangle must lie fully inside this grid;
  /// callers extracting a clipped halo at the chip boundary clamp the
  /// ranges *before* calling (see fullchip::TileRegion).
  Grid2D copy_region(std::size_t i0, std::size_t j0, std::size_t rows,
                     std::size_t cols) const {
    NF_CHECK(i0 + rows <= rows_, "copy_region: rows [%zu, %zu) exceed %zu",
             i0, i0 + rows, rows_);
    NF_CHECK(j0 + cols <= cols_, "copy_region: cols [%zu, %zu) exceed %zu",
             j0, j0 + cols, cols_);
    Grid2D out(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j)
        out.data_[i * cols + j] = data_[(i0 + i) * cols_ + (j0 + j)];
    return out;
  }

  /// Writes `src` into this grid with its top-left corner at (i0, j0).
  /// The destination rectangle must lie fully inside this grid.
  void paste_region(std::size_t i0, std::size_t j0, const Grid2D& src) {
    NF_CHECK(i0 + src.rows_ <= rows_,
             "paste_region: rows [%zu, %zu) exceed %zu", i0, i0 + src.rows_,
             rows_);
    NF_CHECK(j0 + src.cols_ <= cols_,
             "paste_region: cols [%zu, %zu) exceed %zu", j0, j0 + src.cols_,
             cols_);
    for (std::size_t i = 0; i < src.rows_; ++i)
      for (std::size_t j = 0; j < src.cols_; ++j)
        data_[(i0 + i) * cols_ + (j0 + j)] = src.data_[i * src.cols_ + j];
  }

  bool same_shape(const Grid2D& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  friend bool operator==(const Grid2D& a, const Grid2D& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using GridF = Grid2D<float>;
using GridD = Grid2D<double>;

}  // namespace neurfill
