#include "common/log.hpp"

#include <atomic>

namespace neurfill {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  // The LOG_* sink itself — the one place library code may fprintf.
  // nf-lint: allow(contract-style)
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace neurfill
