#pragma once

// Cache-line-aligned allocation for the packed compute kernels.
//
// The tiled GEMM in src/nn/gemm.cpp streams packed panels of A and B
// through SIMD loads; 64-byte alignment keeps every panel row on one cache
// line and lets the compiler emit aligned vector moves.  AlignedBuffer is a
// grow-only scratch: `ensure(n)` reallocates only when the requested count
// exceeds the current capacity and never shrinks, so a thread_local
// instance amortizes allocation to zero across repeated kernel calls (the
// persistent im2col scratch in src/nn/ops_conv.cpp relies on exactly this).

#include <cstddef>
#include <cstdlib>
#include <new>

namespace neurfill {

/// Allocates `bytes` rounded up to a multiple of `alignment` (which must be
/// a power of two) with std::aligned_alloc; throws std::bad_alloc on
/// failure.  Free with std::free.
inline void* aligned_malloc(std::size_t bytes, std::size_t alignment = 64) {
  if (bytes == 0) bytes = alignment;
  const std::size_t rounded = (bytes + alignment - 1) & ~(alignment - 1);
  void* p = std::aligned_alloc(alignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

/// Grow-only 64-byte-aligned scratch buffer for trivially-copyable element
/// types.  Contents are unspecified after a growing ensure(); the buffer is
/// intended for scratch that is fully overwritten by its producer.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { std::free(ptr_); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : ptr_(other.ptr_), capacity_(other.capacity_) {
    other.ptr_ = nullptr;
    other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(ptr_);
      ptr_ = other.ptr_;
      capacity_ = other.capacity_;
      other.ptr_ = nullptr;
      other.capacity_ = 0;
    }
    return *this;
  }

  /// Returns a buffer of at least `count` elements, reusing the existing
  /// allocation when it is already big enough.
  T* ensure(std::size_t count) {
    if (count > capacity_) {
      // Grow by at least 1.5x so alternating sizes don't thrash realloc.
      std::size_t grown = capacity_ + capacity_ / 2;
      if (grown < count) grown = count;
      std::free(ptr_);
      ptr_ = static_cast<T*>(aligned_malloc(grown * sizeof(T)));
      capacity_ = grown;
    }
    return ptr_;
  }

  T* data() { return ptr_; }
  const T* data() const { return ptr_; }
  std::size_t capacity() const { return capacity_; }

 private:
  T* ptr_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace neurfill
