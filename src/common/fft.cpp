#include "common/fft.hpp"

#include <cmath>

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace neurfill {

void fft(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  NF_CHECK((n & (n - 1)) == 0, "fft size must be a power of two, got %zu", n);
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv_n;
  }
}

void fft2d(std::vector<std::complex<double>>& a, std::size_t rows,
           std::size_t cols, bool inverse) {
  NF_CHECK(a.size() == rows * cols,
           "fft2d: buffer size %zu does not match %zu x %zu grid", a.size(),
           rows, cols);
  NF_TRACE_SPAN("fft.2d");
  NF_COUNTER_ADD("fft.passes", 1);
  NF_COUNTER_ADD("fft.points", a.size());
  std::complex<double>* pa = a.data();
  // The 1-D transforms of a batch are independent (each touches one row /
  // one column), so both passes parallelize with a scratch buffer per
  // block.  Grains come from a measured cost model: one len-point transform
  // plus its scratch copies is ~4 ns * len * log2(len) (e.g. ~3.6 us at
  // len = 128, matching --trace), the column pass ~1.5x that for the
  // strided gather/scatter.  grain_for_cost turns this into ~25 us blocks
  // and runs whole sub-50 us passes inline — a 128 x 128 transform used to
  // fork 2 x 16 tiny blocks per pass and was *slower* at 4-8 threads.
  const auto fft_cost_ns = [](std::size_t len) {
    return 4.0 * static_cast<double>(len) *
           std::log2(static_cast<double>(len < 2 ? 2 : len));
  };
  // Rows.
  const std::size_t row_grain =
      runtime::grain_for_cost(fft_cost_ns(cols), rows);
  runtime::parallel_for(row_grain, rows, [=](std::size_t i0, std::size_t i1) {
    std::vector<std::complex<double>> tmp;
    for (std::size_t i = i0; i < i1; ++i) {
      tmp.assign(pa + i * cols, pa + (i + 1) * cols);
      fft(tmp, inverse);
      std::copy(tmp.begin(), tmp.end(), pa + i * cols);
    }
  });
  // Columns.
  const std::size_t col_grain =
      runtime::grain_for_cost(1.5 * fft_cost_ns(rows), cols);
  runtime::parallel_for(col_grain, cols, [=](std::size_t j0, std::size_t j1) {
    std::vector<std::complex<double>> tmp(rows);
    for (std::size_t j = j0; j < j1; ++j) {
      for (std::size_t i = 0; i < rows; ++i) tmp[i] = pa[i * cols + j];
      fft(tmp, inverse);
      for (std::size_t i = 0; i < rows; ++i) pa[i * cols + j] = tmp[i];
    }
  });
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

CircularConvolver::CircularConvolver(const GridD& kernel)
    : rows_(next_pow2(kernel.rows())), cols_(next_pow2(kernel.cols())) {
  // Embed the wrap-around kernel into the power-of-two grid preserving the
  // "offset modulo size" interpretation: entries near (0,0) stay near (0,0),
  // entries near the far edge stay near the far edge.
  kernel_hat_.assign(rows_ * cols_, {0.0, 0.0});
  const std::size_t kr = kernel.rows(), kc = kernel.cols();
  for (std::size_t i = 0; i < kr; ++i) {
    const std::size_t ti = (i <= kr / 2) ? i : rows_ - (kr - i);
    for (std::size_t j = 0; j < kc; ++j) {
      const std::size_t tj = (j <= kc / 2) ? j : cols_ - (kc - j);
      kernel_hat_[ti * cols_ + tj] += kernel(i, j);
    }
  }
  fft2d(kernel_hat_, rows_, cols_, /*inverse=*/false);
}

GridD CircularConvolver::apply(const GridD& input) const {
  NF_TRACE_SPAN("fft.convolve");
  // The convolver is constructed for exact power-of-two grids in the contact
  // solver; callers with other sizes pad before constructing.
  NF_CHECK(input.rows() <= rows_ && input.cols() <= cols_,
           "CircularConvolver::apply: input %zu x %zu exceeds transform "
           "%zu x %zu",
           input.rows(), input.cols(), rows_, cols_);
  std::vector<std::complex<double>> x(rows_ * cols_, {0.0, 0.0});
  for (std::size_t i = 0; i < input.rows(); ++i)
    for (std::size_t j = 0; j < input.cols(); ++j)
      x[i * cols_ + j] = input(i, j);
  fft2d(x, rows_, cols_, false);
  {
    std::complex<double>* px = x.data();
    const std::complex<double>* pk = kernel_hat_.data();
    // ~3 ns per complex multiply: grids under ~16k points stay inline.
    const std::size_t grain = runtime::grain_for_cost(3.0, x.size());
    runtime::parallel_for(grain, x.size(),
                          [=](std::size_t k0, std::size_t k1) {
      for (std::size_t k = k0; k < k1; ++k) px[k] *= pk[k];
    });
  }
  fft2d(x, rows_, cols_, true);
  GridD out(input.rows(), input.cols());
  for (std::size_t i = 0; i < input.rows(); ++i)
    for (std::size_t j = 0; j < input.cols(); ++j)
      out(i, j) = x[i * cols_ + j].real();
  return out;
}

GridD convolve_small(const GridD& input, const GridD& kernel,
                     bool normalize_boundary) {
  NF_TRACE_SPAN("fft.convolve_small");
  NF_CHECK(kernel.rows() % 2 == 1 && kernel.cols() % 2 == 1,
           "convolve_small: kernel must be odd-sized and centered, got "
           "%zu x %zu",
           kernel.rows(), kernel.cols());
  const std::ptrdiff_t R = static_cast<std::ptrdiff_t>(input.rows());
  const std::ptrdiff_t C = static_cast<std::ptrdiff_t>(input.cols());
  const std::ptrdiff_t kr = static_cast<std::ptrdiff_t>(kernel.rows()) / 2;
  const std::ptrdiff_t kc = static_cast<std::ptrdiff_t>(kernel.cols()) / 2;
  GridD out(input.rows(), input.cols(), 0.0);
  // Each output row is independent of the others (pure gather), so the row
  // loop parallelizes; a row costs R_kernel * C_kernel * C multiply-adds at
  // ~2.5 ns each (bounds-checked gather), which grain_for_cost converts to
  // ~25 us blocks (small inputs run inline as a single block).
  const double row_cost_ns = 2.5 * static_cast<double>(kernel.rows()) *
                             static_cast<double>(kernel.cols()) *
                             static_cast<double>(C);
  const std::size_t row_grain =
      runtime::grain_for_cost(row_cost_ns, static_cast<std::size_t>(R));
  runtime::parallel_for(row_grain, static_cast<std::size_t>(R),
                        [&](std::size_t r0, std::size_t r1) {
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(r0);
       i < static_cast<std::ptrdiff_t>(r1); ++i) {
    for (std::ptrdiff_t j = 0; j < C; ++j) {
      double acc = 0.0;
      double mass = 0.0;
      for (std::ptrdiff_t di = -kr; di <= kr; ++di) {
        const std::ptrdiff_t ii = i + di;
        if (ii < 0 || ii >= R) continue;
        for (std::ptrdiff_t dj = -kc; dj <= kc; ++dj) {
          const std::ptrdiff_t jj = j + dj;
          if (jj < 0 || jj >= C) continue;
          const double w = kernel(static_cast<std::size_t>(di + kr),
                                  static_cast<std::size_t>(dj + kc));
          acc += input(static_cast<std::size_t>(ii),
                       static_cast<std::size_t>(jj)) *
                 w;
          mass += w;
        }
      }
      if (normalize_boundary && mass > 0.0) acc /= mass;
      out(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = acc;
    }
  }
  });
  return out;
}

}  // namespace neurfill
