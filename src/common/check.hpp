#pragma once

// Always-on runtime contract checks for the numerical core.
//
// Unlike assert(), these macros stay active in Release builds: the surrogate
// is only a trustworthy replacement for the reference CMP simulator if
// out-of-bounds grid access, shape mismatches, and NaN/Inf poisoning abort
// loudly instead of corrupting a fill solution silently.  A failed check
// prints the violated condition with file:line context to stderr and calls
// std::abort(), so failures are visible to ctest, debuggers, and the
// sanitizers' crash reporting alike.
//
// Policy (see docs/correctness.md):
//  * NF_CHECK / NF_CHECK_BOUNDS / NF_CHECK_FINITE / NF_CHECK_ALL_FINITE are
//    compiled out only when NEURFILL_DISABLE_CHECKS is defined, which the
//    build sets when configured with -DNEURFILL_ENABLE_CHECKS=OFF.  When
//    disabled, condition expressions are still type-checked (unevaluated),
//    so a checks-off build cannot rot.
//  * NF_UNREACHABLE is active unconditionally: reaching it is a logic error
//    that no build configuration should survive.
//  * Checks guard *internal invariants*.  Errors a caller can plausibly
//    trigger with bad input (file parsing, public API argument validation)
//    keep throwing std::runtime_error / std::invalid_argument.
//
// This header IS the failure machinery the contract-style lint rule points
// everyone else at, so its fprintf/abort use is the one sanctioned instance.
// nf-lint: allow-file(contract-style)

#include <cmath>
#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

namespace neurfill::contract {

#if defined(__GNUC__) || defined(__clang__)
// Attribute arguments cannot be parenthesized, hence the NOLINT.
#define NF_PRINTF_LIKE(fmt_index, first_arg) \
  __attribute__((format(printf, fmt_index, first_arg)))  // NOLINT(bugprone-macro-parentheses)
#else
#define NF_PRINTF_LIKE(fmt_index, first_arg)
#endif

[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] NF_PRINTF_LIKE(5, 6) inline void fail(const char* kind,
                                                   const char* expr,
                                                   const char* file, int line,
                                                   const char* fmt, ...) {
  std::fprintf(stderr, "%s failed: %s (%s:%d): ", kind, expr, file, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

/// NaN/Inf poison detector over a contiguous buffer; aborts on the first
/// non-finite element, reporting its index and value.  `what` names the
/// buffer in the failure message (e.g. "sqp: objective gradient").
template <typename T>
inline void check_all_finite(const char* what, const T* p, std::size_t n,
                             const char* file, int line) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(static_cast<double>(p[i]))) {
      fail("NF_CHECK_ALL_FINITE", what, file, line,
           "element %zu of %zu is %g", i, n, static_cast<double>(p[i]));
    }
  }
}

/// Declared, never defined: used inside sizeof() by the checks-disabled
/// macro stubs so every check argument stays type-checked and "used".
template <typename... Args>
int unevaluated(Args&&...);

}  // namespace neurfill::contract

/// Unconditional: reaching this is a logic error in every build type.
#define NF_UNREACHABLE(msg) \
  ::neurfill::contract::fail("NF_UNREACHABLE", msg, __FILE__, __LINE__)

#if !defined(NEURFILL_DISABLE_CHECKS)

/// General contract: NF_CHECK(cond) or NF_CHECK(cond, "fmt", args...).
#define NF_CHECK(cond, ...)                                             \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::neurfill::contract::fail("NF_CHECK", #cond, __FILE__,           \
                                 __LINE__ __VA_OPT__(, ) __VA_ARGS__);  \
    }                                                                   \
  } while (0)

/// Bounds contract: index must satisfy 0 <= index < size.  A negative signed
/// index wraps to a huge unsigned value and fails the comparison.
#define NF_CHECK_BOUNDS(index, size)                                        \
  do {                                                                      \
    const auto nf_chk_idx_ = (index);                                       \
    const auto nf_chk_sz_ = (size);                                         \
    if (static_cast<unsigned long long>(nf_chk_idx_) >=                     \
        static_cast<unsigned long long>(nf_chk_sz_)) [[unlikely]] {         \
      ::neurfill::contract::fail(                                           \
          "NF_CHECK_BOUNDS", #index " < " #size, __FILE__, __LINE__,        \
          "index %llu, size %llu",                                          \
          static_cast<unsigned long long>(nf_chk_idx_),                     \
          static_cast<unsigned long long>(nf_chk_sz_));                     \
    }                                                                       \
  } while (0)

/// Finiteness contract on one scalar (rejects NaN and +/-Inf).
#define NF_CHECK_FINITE(value)                                              \
  do {                                                                      \
    const double nf_chk_val_ = static_cast<double>(value);                  \
    if (!std::isfinite(nf_chk_val_)) [[unlikely]] {                         \
      ::neurfill::contract::fail("NF_CHECK_FINITE", #value, __FILE__,       \
                                 __LINE__, "value is %g", nf_chk_val_);     \
    }                                                                       \
  } while (0)

/// Finiteness contract over a buffer of float/double.
#define NF_CHECK_ALL_FINITE(what, ptr, count)                          \
  ::neurfill::contract::check_all_finite((what), (ptr),                \
                                         static_cast<std::size_t>(count), \
                                         __FILE__, __LINE__)

#else  // NEURFILL_DISABLE_CHECKS

// Unevaluated but type-checked stubs: expressions keep compiling (and their
// variables stay "used") without any runtime cost.
#define NF_CHECK(cond, ...)  \
  ((void)sizeof(!(cond)),    \
   (void)sizeof(::neurfill::contract::unevaluated(__VA_ARGS__)))
#define NF_CHECK_BOUNDS(index, size) \
  ((void)sizeof(index), (void)sizeof(size))
#define NF_CHECK_FINITE(value) ((void)sizeof(value))
#define NF_CHECK_ALL_FINITE(what, ptr, count) \
  ((void)sizeof(what), (void)sizeof(ptr), (void)sizeof(count))

#endif  // NEURFILL_DISABLE_CHECKS
