#pragma once

// Monotonic run deadlines (docs/robustness.md).
//
// A Deadline is a point on the steady clock, threaded by value through the
// simulate/optimize loops.  Loops check expired() at points where their
// best-so-far state is a *valid* answer (between optimizer iterations,
// between MSP starts, between training epochs), so an expired deadline
// degrades to "return the best feasible result with timed_out set" rather
// than tearing down mid-update.  The default-constructed Deadline is
// infinite and costs one branch to check — loops thread it unconditionally.

#include <chrono>
#include <limits>

namespace neurfill {

class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline infinite() { return Deadline(); }

  bool is_infinite() const { return infinite_; }

  bool expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Seconds until expiry (negative once expired; +inf for the infinite
  /// deadline).
  double remaining_seconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - std::chrono::steady_clock::now())
        .count();
  }

 private:
  bool infinite_ = true;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace neurfill
