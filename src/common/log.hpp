#pragma once

#include <cstdio>
#include <string>

namespace neurfill {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal stderr logger.  Verbosity is a process-wide knob so benches can
/// silence the library while tests keep diagnostics.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

#define NEURFILL_LOG(level, ...)                                   \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::neurfill::log_level())) {               \
      char buf_[512];                                              \
      std::snprintf(buf_, sizeof(buf_), __VA_ARGS__);              \
      ::neurfill::log_message(level, buf_);                        \
    }                                                              \
  } while (0)

#define LOG_DEBUG(...) NEURFILL_LOG(::neurfill::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) NEURFILL_LOG(::neurfill::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) NEURFILL_LOG(::neurfill::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) NEURFILL_LOG(::neurfill::LogLevel::kError, __VA_ARGS__)

}  // namespace neurfill
