#pragma once

#include <complex>
#include <vector>

#include "common/grid2d.hpp"

namespace neurfill {

/// In-place iterative radix-2 Cooley-Tukey FFT.  n must be a power of two.
void fft(std::vector<std::complex<double>>& a, bool inverse);

/// 2-D FFT over a rows x cols complex grid (both dimensions powers of two).
void fft2d(std::vector<std::complex<double>>& a, std::size_t rows,
           std::size_t cols, bool inverse);

std::size_t next_pow2(std::size_t n);

/// Circular 2-D convolution of two equally-sized grids via FFT.  Sizes need
/// not be powers of two externally; this is the power-of-two core used by
/// CircularConvolver.
class CircularConvolver {
 public:
  /// Prepares the frequency-domain kernel for repeated convolutions.  The
  /// kernel grid is interpreted as centered at (0,0) with wrap-around (i.e.
  /// kernel(i,j) weights offset (i,j) modulo the grid).
  CircularConvolver(const GridD& kernel);

  /// Returns the circular convolution kernel * input (same shape as kernel).
  GridD apply(const GridD& input) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::complex<double>> kernel_hat_;
};

/// Linear (zero-padded) 2-D convolution of `input` with a small centered
/// kernel, computed directly.  Used for character-length density smoothing
/// where the kernel radius is a handful of windows.  With
/// `normalize_boundary`, each output is divided by the kernel mass that fell
/// inside the grid, which treats the chip boundary as statistically
/// replicated instead of empty (the physical choice for density smoothing).
GridD convolve_small(const GridD& input, const GridD& kernel,
                     bool normalize_boundary = false);

}  // namespace neurfill
