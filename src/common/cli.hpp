#pragma once

// Typed command-line parsing shared by every tool (nf_fill, nf_simulate,
// nf_gen, nf_info).
//
// Two layers:
//  * ArgParser — declare positionals and typed options up front, get
//    generated usage text, "--help", and strict value validation.  Numeric
//    options reject anything std::strtol/strtod does not consume entirely,
//    so "--threads garbage" is a hard error instead of the silent zero that
//    std::atoi used to produce.
//  * CommonToolOptions — the flags every tool shares (--threads, --trace,
//    --metrics, --metrics-json, --log-level), registered, applied, and
//    flushed by one set of helpers so a new tool gets the whole
//    observability surface with three calls.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace neurfill {

/// Strict numeric parsing: the whole token must convert and the value must
/// fit the destination type.  Empty strings, trailing junk ("12abc"),
/// leading whitespace, overflow, and (for the unsigned parser) negative
/// input all fail — unlike std::atoi/std::atof, which silently return 0.
bool parse_int_strict(const std::string& text, int* out);
bool parse_uint64_strict(const std::string& text, std::uint64_t* out);
bool parse_double_strict(const std::string& text, double* out);

/// Declarative argv parser.  Options may appear anywhere ("--name value" or
/// "--name=value"); every non-option token fills the next positional, and
/// all declared positionals are required.  "-h"/"--help" prints usage.
class ArgParser {
 public:
  enum class Result {
    kOk,    ///< everything parsed; outputs are written
    kHelp,  ///< --help was requested and usage printed; exit 0
    kError  ///< bad input; diagnostic + usage printed; exit nonzero
  };

  ArgParser(std::string program, std::string description);

  /// Required positional argument, consumed in declaration order.
  void add_positional(const std::string& name, const std::string& help,
                      std::string* out);

  /// Boolean switch: present sets `*out` to true; takes no value.
  void add_flag(const std::string& name, const std::string& help, bool* out);

  /// Valued options.  `*out` keeps its prior content when the option is
  /// absent, so initialize it with the default.
  void add_string(const std::string& name, const std::string& metavar,
                  const std::string& help, std::string* out);
  /// String option restricted to `choices`; anything else is an error.
  void add_choice(const std::string& name, std::vector<std::string> choices,
                  const std::string& help, std::string* out);
  void add_int(const std::string& name, const std::string& metavar,
               const std::string& help, int* out);
  void add_uint64(const std::string& name, const std::string& metavar,
                  const std::string& help, std::uint64_t* out);
  void add_double(const std::string& name, const std::string& metavar,
                  const std::string& help, double* out);

  /// Parses argv[1..argc).  Help text goes to `out`, diagnostics to `err`;
  /// tools pass std::cout / std::cerr.
  Result parse(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) const;

  /// The generated usage/help text (what --help prints).
  std::string usage() const;

 private:
  struct Option {
    enum class Kind { kFlag, kString, kChoice, kInt, kUint64, kDouble };
    std::string name;
    std::string metavar;
    std::string help;
    Kind kind = Kind::kFlag;
    bool* flag_out = nullptr;
    std::string* string_out = nullptr;
    int* int_out = nullptr;
    std::uint64_t* uint64_out = nullptr;
    double* double_out = nullptr;
    std::vector<std::string> choices;
  };
  struct Positional {
    std::string name;
    std::string help;
    std::string* out = nullptr;
  };

  const Option* find_option(const std::string& name) const;
  bool assign(const Option& opt, const std::string& value,
              std::ostream& err) const;

  std::string program_;
  std::string description_;
  std::vector<Positional> positionals_;
  std::vector<Option> options_;
};

/// The flags shared by every tool.  Defaults are the no-op settings: the
/// runtime keeps its NEURFILL_THREADS/hardware thread count and the obs
/// subsystem stays disabled.
struct CommonToolOptions {
  int threads = 0;                 ///< --threads N (0 = keep default)
  std::string trace_path;          ///< --trace FILE: chrome://tracing JSON
  bool metrics = false;            ///< --metrics: text summary on stderr
  std::string metrics_json_path;   ///< --metrics-json FILE
  std::string log_level = "info";  ///< --log-level debug|info|warn|error
};

/// Registers the shared flags on `parser`.  This is the single place the
/// common tool surface is defined; tools must not re-declare these.
void add_common_options(ArgParser& parser, CommonToolOptions* opts);

/// Applies parsed common options: thread count, log level, and the obs
/// runtime gates (tracing on iff --trace was given; metrics on iff
/// --metrics or --metrics-json was).  Returns false with a diagnostic on
/// `err` for invalid values such as a negative --threads.
bool apply_common_options(const CommonToolOptions& opts, std::ostream& err);

/// Emits the requested observability outputs after the tool body ran: the
/// chrome trace to `trace_path`, the text metrics summary to stderr, and
/// the metrics JSON to `metrics_json_path`.  Returns false if an output
/// file could not be written.
bool finish_common_options(const CommonToolOptions& opts);

}  // namespace neurfill
