#pragma once

#include <cstdint>
#include <vector>

namespace neurfill {

/// Deterministic xoshiro256** PRNG.  Experiments and tests must be exactly
/// reproducible across runs and platforms, so we avoid std::mt19937's
/// distribution implementation differences and own the whole stack.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  /// Bernoulli with probability p of true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent stream (for per-worker/per-sample seeding).
  Rng split();

  /// Exact generator state, for checkpoint/resume (docs/robustness.md): a
  /// restored Rng continues the identical stream, including the cached
  /// Box-Muller half.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.has_cached_normal = has_cached_normal_;
    st.cached_normal = cached_normal_;
    return st;
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    has_cached_normal_ = st.has_cached_normal;
    cached_normal_ = st.cached_normal;
  }

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace neurfill
