#pragma once

// Recoverable-error plumbing for the numerical core and the I/O layer.
//
// Policy (docs/robustness.md): NF_CHECK stays the contract for *internal
// invariants* — states no input should ever reach.  Everything a production
// run can plausibly hit (a non-converged solve, a NaN-poisoned gradient, a
// truncated checkpoint, an expired deadline) is a *routine event* and flows
// through nf::Expected<T> / nf::Error so callers can retry, degrade, or
// report instead of aborting a multi-hour fill job.
//
// Two channels:
//  * Expected<T> — the return-value channel, used wherever the signature is
//    ours to shape (solvers, checkpoint I/O).
//  * ErrorException — the exception bridge, used where an error must cross
//    an interface we cannot widen (ObjectiveFn evaluations, thread-pool
//    blocks).  It carries the same structured Error; catch sites convert it
//    back rather than parsing what().

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace neurfill {

enum class ErrorCode {
  kNonConverged,       ///< iterative solve exhausted its budget
  kNumericPoison,      ///< NaN/Inf detected in a numeric field
  kIo,                 ///< read/write/rename failure
  kNotFound,           ///< file or artifact missing (retry is pointless)
  kCorrupt,            ///< artifact exists but fails validation (magic/CRC)
  kDeadlineExceeded,   ///< the run deadline expired
  kInterrupted,        ///< operator interrupt (SIGINT) acknowledged
  kResourceExhausted,  ///< allocation or capacity failure
  kInvalidArgument,    ///< caller-provided data is unusable
  kOverloaded,         ///< admission shed the request (backpressure/drain)
  kQueueFull,          ///< a bounded table/queue is at capacity
  kRetryExhausted,     ///< retries with backoff all failed
};

const char* error_code_name(ErrorCode code);

/// A structured, human-assembled error: what failed (code), where
/// (subsystem, e.g. "cmp.contact" or "nn.serialize"), and the specifics
/// (message, which names files/sections/values — never a stack trace).
struct Error {
  ErrorCode code = ErrorCode::kIo;
  std::string subsystem;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string sub, std::string msg)
      : code(c), subsystem(std::move(sub)), message(std::move(msg)) {}

  /// "[cmp.contact] non_converged: residual 3.2e-5 after 400 iterations"
  std::string to_string() const {
    std::string s;
    s.reserve(subsystem.size() + message.size() + 24);
    s += '[';
    s += subsystem;
    s += "] ";
    s += error_code_name(code);
    s += ": ";
    s += message;
    return s;
  }
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNonConverged: return "non_converged";
    case ErrorCode::kNumericPoison: return "numeric_poison";
    case ErrorCode::kIo: return "io_error";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kInterrupted: return "interrupted";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kRetryExhausted: return "retry_exhausted";
  }
  return "unknown";
}

/// Exception bridge carrying a structured Error across interfaces that can
/// only throw (objective callbacks, pool blocks).  what() is the formatted
/// to_string(), so even a generic catch(std::exception) prints the full
/// context; typed catch sites read err directly.
class ErrorException : public std::runtime_error {
 public:
  explicit ErrorException(Error e)
      : std::runtime_error(e.to_string()), err(std::move(e)) {}
  Error err;
};

/// Lightweight expected: either a value or an Error.  Deliberately minimal —
/// no monadic combinators, just the checks and accessors the call sites
/// need.  Accessing the wrong alternative is a contract violation and
/// terminates via std::get's bad_variant_access.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : v_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const { return std::get<Error>(v_); }

  /// Moves the value out, or returns `fallback` on error.
  T value_or(T fallback) && {
    return ok() ? std::move(std::get<T>(v_)) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Expected<void>: success carries nothing; failure carries the Error.
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : has_error_(true), err_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return !has_error_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return err_; }

 private:
  bool has_error_ = false;
  Error err_;
};

}  // namespace neurfill

/// The ISSUE-facing spelling: nf::Expected / nf::Error.
namespace nf = neurfill;
