#include "common/rng.hpp"

#include <cmath>

namespace neurfill {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
// splitmix64 is the recommended seeder for xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace neurfill
