#include "common/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>
#include <system_error>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/fault.hpp"

namespace neurfill {

namespace {

constexpr char kMagic[4] = {'N', 'F', 'C', 'P'};
constexpr std::uint32_t kVersion = 1;

std::string errno_text() {
  // std::strerror shares a static buffer across threads; the
  // error_code route is reentrant.
  return std::error_code(errno, std::generic_category()).message();
}

/// Formats "%08x" without dragging in <sstream>/<iomanip>.
std::string hex8(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return std::string(buf);
}

Error io_error(const std::string& path, const std::string& what) {
  return Error(ErrorCode::kIo, "common.checkpoint",
               "'" + path + "': " + what);
}

Error corrupt(const std::string& path, const std::string& what) {
  return Error(ErrorCode::kCorrupt, "common.checkpoint",
               "'" + path + "': " + what);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  // Bytewise reflected CRC-32 with a lazily built table; identical to
  // zlib.crc32 so checkpoints can be authored/audited from Python.
  static const std::uint32_t* kTable = [] {
    static std::uint32_t table[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void CheckpointWriter::add_section(const std::string& name,
                                   std::vector<char> payload) {
  for (const auto& s : sections_)
    NF_CHECK(s.first != name, "duplicate checkpoint section: %s", name.c_str());
  sections_.emplace_back(name, std::move(payload));
}

[[nodiscard]] Expected<void> CheckpointWriter::commit(const std::string& path) const {
  // Assemble the complete image in memory first: the on-disk file is written
  // in one pass, so a crash can only produce a missing or torn *temp* file,
  // never a torn checkpoint.
  ByteWriter image;
  image.raw(kMagic, sizeof(kMagic));
  image.u32(kVersion);
  image.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    image.str(name);
    image.u64(payload.size());
    image.u32(crc32(payload.data(), payload.size()));
    image.raw(payload.data(), payload.size());
  }
  const std::vector<char> bytes = image.take();
  // The shared crash-safe path (common/atomic_file.hpp) carries the
  // io.short_write / io.rename fault sites.
  return atomic_write_file(path, bytes.data(), bytes.size(),
                           "common.checkpoint");
}

[[nodiscard]] Expected<CheckpointReader> CheckpointReader::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT)
      return Error(ErrorCode::kNotFound, "common.checkpoint",
                   "'" + path + "': no such file");
    return io_error(path, "open failed: " + errno_text());
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  ::lseek(fd, 0, SEEK_SET);
  if (size < 0) {
    ::close(fd);
    return io_error(path, "lseek failed: " + errno_text());
  }
  if (NF_FAULT("checkpoint.alloc")) {
    ::close(fd);
    return Error(ErrorCode::kResourceExhausted, "common.checkpoint",
                 "'" + path + "': allocation of " + std::to_string(size) +
                     " bytes failed (injected)");
  }
  std::vector<char> bytes;
  try {
    bytes.resize(static_cast<std::size_t>(size));
  } catch (const std::bad_alloc&) {
    ::close(fd);
    return Error(ErrorCode::kResourceExhausted, "common.checkpoint",
                 "'" + path + "': allocation of " + std::to_string(size) +
                     " bytes failed");
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t r = ::read(fd, bytes.data() + off, bytes.size() - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return io_error(path, "read failed: " + errno_text());
    }
    if (r == 0) break;  // concurrent truncation: parsed below as corrupt
    off += static_cast<std::size_t>(r);
  }
  ::close(fd);
  if (NF_FAULT("io.short_read")) off /= 2;
  bytes.resize(off);

  // Parse + validate everything up front.
  ByteReader r(bytes);
  char magic[4];
  if (!r.raw(magic, sizeof(magic)) || std::memcmp(magic, kMagic, 4) != 0)
    return corrupt(path, "bad magic (not an NFCP checkpoint)");
  const std::uint32_t version = r.u32();
  if (!r.ok() || version != kVersion)
    return corrupt(path, "unsupported version " + std::to_string(version) +
                             " (expected " + std::to_string(kVersion) + ")");
  const std::uint32_t count = r.u32();
  if (!r.ok()) return corrupt(path, "truncated before section count");
  CheckpointReader reader;
  reader.path_ = path;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    const std::uint64_t payload_len = r.u64();
    const std::uint32_t expect_crc = r.u32();
    if (!r.ok() || payload_len > bytes.size())
      return corrupt(path, "truncated header of section " + std::to_string(i) +
                               (name.empty() ? "" : " ('" + name + "')"));
    std::vector<char> payload(static_cast<std::size_t>(payload_len));
    if (!r.raw(payload.data(), payload.size()))
      return corrupt(path, "section '" + name + "' truncated: expected " +
                               std::to_string(payload_len) + " payload bytes");
    const std::uint32_t actual_crc = crc32(payload.data(), payload.size());
    if (actual_crc != expect_crc)
      return corrupt(path, "section '" + name + "' checksum mismatch: expected "
                               + hex8(expect_crc) + ", got " + hex8(actual_crc));
    reader.names_.push_back(name);
    reader.sections_.emplace_back(name, std::move(payload));
  }
  if (!r.at_end())
    return corrupt(path, "trailing bytes after last section");
  return reader;
}

bool CheckpointReader::has_section(const std::string& name) const {
  for (const auto& s : sections_)
    if (s.first == name) return true;
  return false;
}

[[nodiscard]] Expected<const std::vector<char>*> CheckpointReader::section(
    const std::string& name) const {
  for (const auto& s : sections_)
    if (s.first == name) return &s.second;
  return Error(ErrorCode::kCorrupt, "common.checkpoint",
               "'" + path_ + "': missing section '" + name + "'");
}

}  // namespace neurfill
