#include "fullchip/driver.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "fill/baselines.hpp"
#include "fullchip/tile_store.hpp"
#include "fullchip/tiling.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace neurfill::fullchip {

namespace {

Error driver_error(ErrorCode code, const std::string& what) {
  return Error(code, "fullchip.driver", what);
}

/// Flattened variable index of window (i, j) on layer l in a tile problem,
/// matching FillProblem::flatten (layers outermost, row-major grids).
std::size_t var_index(std::size_t l, std::size_t i, std::size_t j,
                      std::size_t rows, std::size_t cols) {
  return (l * rows + i) * cols + j;
}

/// One tile's outcome within a pass, collected by tile index so the serial
/// commit/seam loops see a thread-count-independent ordering.
struct TileOutcome {
  TileRecord record;
  bool loaded = false;
  double seconds = 0.0;
};

struct PassContext {
  const GlfRegionIndex& index;
  const TileGrid& grid;
  const FullChipOptions& options;
  const TileStore& store;
  /// Committed fill from the previous pass; fringe windows pin to it when
  /// `pass` >= 1.
  const std::vector<GridD>* committed_prev = nullptr;
  int pass = 0;
  std::size_t num_layers = 0;
};

}  // namespace

// Loading *unclipped* rects is what keeps per-window clipping and perimeter
// attribution equal to the monolithic extraction — a rect cut at the tile
// edge would contribute spurious perimeter.
Layout load_tile_layout(const GlfRegionIndex& index, const TileRegion& tile,
                        double window_um) {
  const double w = window_um;
  const Layout region = index.load_region(tile.halo_rect(w));
  const double ox = static_cast<double>(tile.halo_col0) * w;
  const double oy = static_cast<double>(tile.halo_row0) * w;
  Layout local;
  local.name = region.name;
  local.width_um = static_cast<double>(tile.halo_cols()) * w;
  local.height_um = static_cast<double>(tile.halo_rows()) * w;
  local.layers.resize(region.layers.size());
  for (std::size_t l = 0; l < region.layers.size(); ++l) {
    local.layers[l].name = region.layers[l].name;
    local.layers[l].wires.reserve(region.layers[l].wires.size());
    for (const Rect& r : region.layers[l].wires)
      local.layers[l].wires.emplace_back(r.x0 - ox, r.y0 - oy, r.x1 - ox,
                                         r.y1 - oy);
    local.layers[l].dummies.reserve(region.layers[l].dummies.size());
    for (const Rect& r : region.layers[l].dummies)
      local.layers[l].dummies.emplace_back(r.x0 - ox, r.y0 - oy, r.x1 - ox,
                                           r.y1 - oy);
  }
  return local;
}

namespace {

/// Pins every halo-fringe variable to the committed value from the previous
/// pass (lo == hi), leaving core windows free: the Jacobi stitch update.
void pin_fringe(FillProblem& problem, const TileRegion& tile,
                const std::vector<GridD>& committed_prev) {
  const WindowExtraction& ext = problem.extraction();
  Box box = problem.bounds();
  for (std::size_t l = 0; l < ext.num_layers(); ++l) {
    for (std::size_t i = 0; i < ext.rows; ++i) {
      for (std::size_t j = 0; j < ext.cols; ++j) {
        const std::size_t chip_row = tile.halo_row0 + i;
        const std::size_t chip_col = tile.halo_col0 + j;
        if (!tile.in_halo_fringe(chip_row, chip_col)) continue;
        const std::size_t k = var_index(l, i, j, ext.rows, ext.cols);
        const double v = committed_prev[l](chip_row, chip_col);
        box.lo[k] = v;
        box.hi[k] = v;
      }
    }
  }
  problem.set_bounds_override(std::move(box));
}

TileRecord solve_tile(const PassContext& ctx, const TileRegion& tile,
                      double* seconds) {
  obs::SpanTimer timer("fullchip.tile");
  const FullChipOptions& opt = ctx.options;
  TileRecord record;
  if (opt.deadline.expired()) {
    // Honest degradation: past the deadline a tile gets the feasible
    // zero fill instead of burning more wall clock.
    record.x.assign(ctx.num_layers,
                    GridD(tile.halo_rows(), tile.halo_cols(), 0.0));
    record.timed_out = true;
    *seconds = timer.stop_seconds();
    return record;
  }

  const Layout local =
      load_tile_layout(ctx.index, tile, ctx.grid.window_um());
  const WindowExtraction ext = extract_windows(local, opt.extract);
  NF_CHECK(ext.rows == tile.halo_rows() && ext.cols == tile.halo_cols(),
           "fullchip: tile extraction %zux%zu != halo %zux%zu", ext.rows,
           ext.cols, tile.halo_rows(), tile.halo_cols());
  CmpProcessParams params = opt.process;
  params.window_um = opt.extract.window_um;
  const CmpSimulator sim(params);
  const ScoreCoefficients coeffs = make_coefficients(local, ext, sim);
  FillProblem problem(ext, sim, coeffs);
  if (ctx.pass >= 1) pin_fringe(problem, tile, *ctx.committed_prev);

  FillRunResult run;
  if (opt.method == "lin") {
    run = lin_rule_fill(problem);
  } else {
    std::shared_ptr<const CmpSurrogate> surrogate = opt.surrogate_factory();
    if (!surrogate)
      throw ErrorException(driver_error(
          ErrorCode::kInvalidArgument,
          "surrogate factory returned null for tile solve"));
    CmpNetwork network(surrogate, ext, coeffs);
    calibrate_network(network, problem);
    NeurFillOptions nopt = opt.fill;
    nopt.deadline = opt.deadline;
    nopt.interrupt = opt.interrupt;
    nopt.snapshot_path =
        ctx.store.tile_snapshot_path(ctx.pass, tile.ti, tile.tj);
    // A leftover snapshot means this exact tile solve was killed mid-way;
    // a missing one is simply a fresh solve.  Either way the result is
    // bitwise-identical to an uninterrupted solve (the PR-5 contract).
    nopt.resume = true;
    run = opt.method == "pkb" ? neurfill_pkb(problem, network, nopt)
                              : neurfill_mm(problem, network, nopt);
  }
  record.x = std::move(run.x);
  record.timed_out = run.timed_out;
  record.degraded = run.degraded;
  record.evaluations = run.objective_evaluations;
  *seconds = timer.stop_seconds();
  return record;
}

/// Runs one pass over all tiles through the deterministic pool.  Outcomes
/// land in a per-tile slot, so downstream serial loops are order-stable.
std::vector<TileOutcome> run_pass(const PassContext& ctx) {
  const std::size_t n = ctx.grid.num_tiles();
  std::vector<TileOutcome> outcomes(n);
  runtime::parallel_for(1, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      if (ctx.options.interrupt && ctx.options.interrupt->load())
        throw ErrorException(
            driver_error(ErrorCode::kInterrupted,
                         "interrupted; solved tiles remain in '" +
                             ctx.store.dir() + "' for --resume"));
      const TileRegion tile = ctx.grid.tile_by_index(t);
      TileOutcome& out = outcomes[t];
      Expected<TileRecord> loaded =
          ctx.store.load_tile(ctx.pass, tile.ti, tile.tj, tile.halo_rows(),
                              tile.halo_cols(), ctx.num_layers);
      if (loaded.ok()) {
        out.record = std::move(*loaded);
        out.loaded = true;
      } else {
        if (loaded.error().code == ErrorCode::kCorrupt)
          LOG_WARN("fullchip: %s; re-solving tile",
                   loaded.error().to_string().c_str());
        out.record = solve_tile(ctx, tile, &out.seconds);
        NF_COUNTER_ADD("fullchip.tiles_solved", 1);
        Expected<void> saved =
            ctx.store.save_tile(ctx.pass, tile.ti, tile.tj, out.record);
        if (!saved.ok())
          LOG_WARN("fullchip: %s; run continues without resume coverage "
                   "for this tile",
                   saved.error().to_string().c_str());
      }
      // The mid-solve snapshot is superseded by the durable tile record
      // (or by a finished load); drop it either way.
      ::unlink(ctx.store.tile_snapshot_path(ctx.pass, tile.ti, tile.tj)
                   .c_str());
    }
  });
  return outcomes;
}

/// Worst disagreement between any tile's halo-fringe opinion and the
/// committed owner value — the seam metric of docs/fullchip.md.  After a
/// pinned pass the fringe holds the *previous* committed values, so this
/// doubles as the committed-field delta between consecutive passes.
double seam_metric(const TileGrid& grid,
                   const std::vector<TileOutcome>& outcomes,
                   const std::vector<GridD>& committed) {
  double seam = 0.0;
  for (std::size_t t = 0; t < outcomes.size(); ++t) {
    const TileRegion tile = grid.tile_by_index(t);
    const std::vector<GridD>& x = outcomes[t].record.x;
    for (std::size_t l = 0; l < x.size(); ++l) {
      for (std::size_t i = 0; i < tile.halo_rows(); ++i) {
        for (std::size_t j = 0; j < tile.halo_cols(); ++j) {
          const std::size_t chip_row = tile.halo_row0 + i;
          const std::size_t chip_col = tile.halo_col0 + j;
          if (!tile.in_halo_fringe(chip_row, chip_col)) continue;
          seam = std::max(seam, std::abs(x[l](i, j) -
                                         committed[l](chip_row, chip_col)));
        }
      }
    }
  }
  return seam;
}

}  // namespace

FullChipResult fullchip_fill(const GlfRegionIndex& index,
                             const FullChipOptions& options) {
  obs::SpanTimer timer("fullchip.run");
  if (options.method != "lin" && options.method != "pkb" &&
      options.method != "mm")
    throw ErrorException(driver_error(
        ErrorCode::kInvalidArgument,
        "method '" + options.method +
            "' is not tileable (supported: lin, pkb, mm)"));
  if (options.store_dir.empty())
    throw ErrorException(driver_error(ErrorCode::kInvalidArgument,
                                      "store_dir is required"));
  if ((options.method == "pkb" || options.method == "mm") &&
      !options.surrogate_factory)
    throw ErrorException(driver_error(
        ErrorCode::kInvalidArgument,
        "method '" + options.method + "' needs a surrogate_factory"));

  const double window_um = options.extract.window_um;
  const std::size_t rows =
      static_cast<std::size_t>(std::ceil(index.height_um() / window_um));
  const std::size_t cols =
      static_cast<std::size_t>(std::ceil(index.width_um() / window_um));
  const int halo = options.halo_windows >= 0
                       ? options.halo_windows
                       : auto_halo_windows(options.process.char_length_um,
                                           window_um);
  const TileGrid grid(rows, cols, options.tile_windows, halo, window_um);
  // lin assigns per-layer target densities from tile-local rules and cannot
  // honor pinned fringe variables, so refining it would not converge.
  const int max_passes =
      options.method == "lin" ? 0 : std::max(0, options.max_stitch_passes);

  StoreManifest manifest;
  manifest.design_name = index.name();
  manifest.method = options.method;
  manifest.chip_rows = rows;
  manifest.chip_cols = cols;
  manifest.num_layers = index.num_layers();
  manifest.tile_windows = options.tile_windows;
  manifest.halo_windows = halo;
  manifest.window_um = window_um;
  manifest.stitch_tol = options.stitch_tol;
  manifest.max_stitch_passes = max_passes;
  TileStore store(options.store_dir);
  Expected<void> opened = store.open(manifest, options.resume);
  if (!opened.ok()) throw ErrorException(opened.error());

  FullChipResult result;
  result.rows = rows;
  result.cols = cols;
  result.tiles_total = grid.num_tiles();
  result.x.assign(index.num_layers(), GridD(rows, cols, 0.0));

  PassContext ctx{index, grid, options, store, nullptr, 0,
                  index.num_layers()};
  std::vector<GridD> committed_prev;
  for (int pass = 0;; ++pass) {
    NF_TRACE_SPAN("fullchip.stitch");
    ctx.pass = pass;
    ctx.committed_prev = pass >= 1 ? &committed_prev : nullptr;
    const std::vector<TileOutcome> outcomes = run_pass(ctx);

    // Serial commit in tile order: each core window has exactly one owner.
    for (std::size_t t = 0; t < outcomes.size(); ++t) {
      const TileRegion tile = grid.tile_by_index(t);
      const TileOutcome& out = outcomes[t];
      NF_CHECK(out.record.x.size() == index.num_layers(),
               "fullchip: tile %zu returned %zu layers (expected %zu)", t,
               out.record.x.size(), index.num_layers());
      for (std::size_t l = 0; l < out.record.x.size(); ++l)
        for (std::size_t i = tile.core_row0; i < tile.core_row1; ++i)
          for (std::size_t j = tile.core_col0; j < tile.core_col1; ++j)
            result.x[l](i, j) = out.record.x[l](i - tile.halo_row0,
                                                j - tile.halo_col0);
      if (out.loaded) {
        ++result.tiles_loaded;
      } else {
        ++result.tiles_solved;
        result.tile_seconds += out.seconds;
      }
      result.evaluations += out.record.evaluations;
      result.timed_out = result.timed_out || out.record.timed_out;
      result.degraded = result.degraded || out.record.degraded;
    }

    const double seam = seam_metric(grid, outcomes, result.x);
    result.final_seam = seam;
    result.stitch_passes = pass;
    NF_GAUGE_SET("fullchip.seam", seam);
    LOG_INFO("fullchip: pass %d done, seam %.5f (tol %.5f)", pass, seam,
             options.stitch_tol);
    if (seam <= options.stitch_tol || pass >= max_passes ||
        result.timed_out)
      break;
    committed_prev = result.x;
  }
  result.runtime_s = timer.stop_seconds();
  return result;
}

namespace {

/// DummySource over the committed grids: windows are realized one at a time
/// through the same kernel the monolithic insert_dummies uses, so the
/// writer's memory stays O(1) in the chip size.
class CommittedFillSource final : public DummySource {
 public:
  CommittedFillSource(const FullChipResult& result, double window_um,
                      double min_edge_um)
      : result_(result), window_um_(window_um), min_edge_um_(min_edge_um) {}

  std::size_t count(std::size_t layer) override {
    std::size_t n = 0;
    for_layer(layer, [&n](const Rect&) { ++n; });
    return n;
  }

  void emit(std::size_t layer,
            const std::function<void(const Rect&)>& sink) override {
    for_layer(layer, [this, &sink](const Rect& r) {
      ++total_;
      sink(r);
    });
  }

  std::size_t total() const { return total_; }

 private:
  template <typename Sink>
  void for_layer(std::size_t layer, const Sink& sink) {
    const GridD& x = result_.x[layer];
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t j = 0; j < x.cols(); ++j) {
        scratch_.clear();
        append_window_dummies(scratch_, i, j, window_um_, x(i, j),
                              min_edge_um_);
        for (const Rect& r : scratch_) sink(r);
      }
    }
  }

  const FullChipResult& result_;
  double window_um_;
  double min_edge_um_;
  std::vector<Rect> scratch_;
  std::size_t total_ = 0;
};

}  // namespace

std::size_t write_fullchip_result(const GlfRegionIndex& index,
                                  const std::string& out_path,
                                  const FullChipResult& result,
                                  double window_um, double min_dummy_edge_um) {
  NF_CHECK(result.x.size() == index.num_layers(),
           "write_fullchip_result: %zu fill layers for %zu file layers",
           result.x.size(), index.num_layers());
  CommittedFillSource source(result, window_um, min_dummy_edge_um);
  write_glf_with_dummies(index, out_path, source);
  return source.total();
}

}  // namespace neurfill::fullchip
