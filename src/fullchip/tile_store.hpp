#pragma once

// Spill-to-disk store for solved tiles (docs/fullchip.md).
//
// Every solved tile becomes one NFCP checkpoint file
// `tile_p<pass>_r<ti>_c<tj>.nfcp` in the store directory, written through
// the same atomic temp + fsync + rename path as every other checkpoint in
// the project: a SIGKILL at any instant leaves either no record or a
// complete, CRC-validated one, never a torn file.  A `manifest.nfcp`
// records the run configuration; on resume a mismatched manifest is an
// input error (the store belongs to a different run), while a missing or
// corrupt tile record simply means that tile is re-solved — which, because
// tile solves are deterministic, reproduces the exact record that was lost.
//
// Fault sites (docs/robustness.md): `fullchip.tile_write` fails a tile save
// (degradation: the run continues, only resume granularity is lost) and
// `fullchip.tile_read` corrupts a tile load (degradation: the tile is
// re-solved from its inputs).

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/grid2d.hpp"

namespace neurfill::fullchip {

/// Identity of a full-chip run.  Two runs with equal manifests solve the
/// same tiles from the same inputs, so their records are interchangeable —
/// that is the resume contract.
struct StoreManifest {
  std::string design_name;
  std::string method;
  std::uint64_t chip_rows = 0;   ///< windows
  std::uint64_t chip_cols = 0;
  std::uint64_t num_layers = 0;
  std::int64_t tile_windows = 0;
  std::int64_t halo_windows = 0;
  double window_um = 0.0;
  double stitch_tol = 0.0;
  std::int64_t max_stitch_passes = 0;
};

/// One persisted tile solve: the halo-shaped per-layer fill grids plus the
/// run bookkeeping the driver aggregates.
struct TileRecord {
  std::vector<GridD> x;
  bool timed_out = false;
  bool degraded = false;
  std::int64_t evaluations = 0;
};

class TileStore {
 public:
  explicit TileStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Prepares the store.  Fresh runs (`resume == false`) clear any stale
  /// tile records and write the manifest; resumed runs validate the
  /// existing manifest against `manifest` (kInvalidArgument on mismatch —
  /// the store belongs to a different run; a missing manifest just means
  /// there is nothing to resume and the run starts fresh).
  [[nodiscard]] Expected<void> open(const StoreManifest& manifest,
                                    bool resume);

  std::string tile_path(int pass, std::size_t ti, std::size_t tj) const;
  /// Mid-solve MSP snapshot for a tile (plugs the per-tile solve into the
  /// PR-5 snapshot machinery); removed once the tile record is durable.
  std::string tile_snapshot_path(int pass, std::size_t ti,
                                 std::size_t tj) const;

  [[nodiscard]] Expected<void> save_tile(int pass, std::size_t ti,
                                         std::size_t tj,
                                         const TileRecord& record) const;

  /// kNotFound when the record does not exist, kCorrupt when it exists but
  /// fails validation (including a shape mismatch against the expected
  /// halo-grid geometry) — both mean "re-solve this tile".
  [[nodiscard]] Expected<TileRecord> load_tile(int pass, std::size_t ti,
                                               std::size_t tj,
                                               std::size_t rows,
                                               std::size_t cols,
                                               std::size_t layers) const;

 private:
  std::string dir_;
};

}  // namespace neurfill::fullchip
