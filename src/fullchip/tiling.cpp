#include "fullchip/tiling.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace neurfill::fullchip {

TileGrid::TileGrid(std::size_t chip_rows, std::size_t chip_cols,
                   int tile_windows, int halo_windows, double window_um)
    : chip_rows_(chip_rows),
      chip_cols_(chip_cols),
      tile_windows_(tile_windows),
      halo_windows_(halo_windows),
      window_um_(window_um) {
  NF_CHECK(chip_rows > 0 && chip_cols > 0,
           "TileGrid: empty chip grid %zu x %zu", chip_rows, chip_cols);
  NF_CHECK(tile_windows > 0, "TileGrid: tile_windows %d must be positive",
           tile_windows);
  NF_CHECK(halo_windows >= 0, "TileGrid: halo_windows %d must be >= 0",
           halo_windows);
  NF_CHECK(window_um > 0.0, "TileGrid: window_um %g must be positive",
           window_um);
  const std::size_t tw = static_cast<std::size_t>(tile_windows);
  tile_rows_ = (chip_rows + tw - 1) / tw;
  tile_cols_ = (chip_cols + tw - 1) / tw;
}

TileRegion TileGrid::tile(std::size_t ti, std::size_t tj) const {
  NF_CHECK_BOUNDS(ti, tile_rows_);
  NF_CHECK_BOUNDS(tj, tile_cols_);
  const std::size_t tw = static_cast<std::size_t>(tile_windows_);
  const std::size_t h = static_cast<std::size_t>(halo_windows_);
  TileRegion r;
  r.ti = ti;
  r.tj = tj;
  r.core_row0 = ti * tw;
  r.core_row1 = std::min(chip_rows_, (ti + 1) * tw);
  r.core_col0 = tj * tw;
  r.core_col1 = std::min(chip_cols_, (tj + 1) * tw);
  r.halo_row0 = r.core_row0 >= h ? r.core_row0 - h : 0;
  r.halo_row1 = std::min(chip_rows_, r.core_row1 + h);
  r.halo_col0 = r.core_col0 >= h ? r.core_col0 - h : 0;
  r.halo_col1 = std::min(chip_cols_, r.core_col1 + h);
  return r;
}

int auto_halo_windows(double char_length_um, double window_um) {
  NF_CHECK(window_um > 0.0, "auto_halo_windows: window_um %g must be positive",
           window_um);
  const double span = 2.0 * std::max(char_length_um, 0.0);
  return std::max(1, static_cast<int>(std::ceil(span / window_um)));
}

}  // namespace neurfill::fullchip
