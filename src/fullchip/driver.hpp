#pragma once

// Tiled out-of-core full-chip fill driver (docs/fullchip.md).
//
// fullchip_fill() decomposes the chip's window grid into halo tiles
// (tiling.hpp), solves each tile with the existing per-window NeurFill
// pipeline through the deterministic pool, persists every solved tile in
// the spill-to-disk store (tile_store.hpp), and reconciles tile boundaries
// with Jacobi-style stitch passes: after the free-halo initial pass, each
// refinement pass re-solves every tile with its halo fringe *pinned* to the
// committed neighbour cores from the previous pass, until the worst
// cross-tile disagreement (the seam) falls under tolerance or the pass
// budget runs out.  Because every tile solve is a pure function of its
// inputs and the barrier between passes fixes the data flow, the committed
// result is bitwise-identical at any thread count and across a
// SIGKILL + resume cycle.
//
// Memory model: resident state is the O(records) byte-offset index, the
// O(chip windows) committed grids, and one tile's geometry per in-flight
// solve — never the parsed full-chip Layout.

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cmp/simulator.hpp"
#include "common/deadline.hpp"
#include "common/grid2d.hpp"
#include "fill/neurfill.hpp"
#include "fullchip/tiling.hpp"
#include "geom/glf_stream.hpp"
#include "layout/window_grid.hpp"

namespace neurfill::fullchip {

struct FullChipOptions {
  std::string method = "pkb";  ///< lin, pkb, or mm
  ExtractOptions extract;
  CmpProcessParams process;
  int tile_windows = 16;  ///< core tile edge in windows
  /// Halo width in windows; negative derives it from the planarization
  /// length: auto_halo_windows(process.char_length_um, extract.window_um).
  int halo_windows = -1;
  /// Stitch convergence: the run stops refining once the worst halo-fringe
  /// disagreement with the committed neighbour cores (fraction-of-window
  /// units) drops to this value.
  double stitch_tol = 0.02;
  /// Refinement passes after the initial free-halo pass (0 = tile solves
  /// only).  lin is window-local-rule based and cannot honor pinned halos,
  /// so it always runs the initial pass only.
  int max_stitch_passes = 2;
  std::string store_dir;  ///< spill directory (required)
  /// Continue from the store: completed tiles are loaded, missing or
  /// corrupt ones re-solved; the final fill is bitwise-identical to an
  /// uninterrupted run.
  bool resume = false;
  Deadline deadline;
  /// Per-tile solve budgets (deadline/snapshot/interrupt fields are managed
  /// by the driver; set sqp/nmmso/pkb knobs here).
  NeurFillOptions fill;
  /// Called once per pkb/mm tile solve, concurrently: each tile needs its
  /// own surrogate instance because a forward/backward pass accumulates
  /// gradients in the network it runs through.  Typical implementation:
  /// load_surrogate(prefix).
  std::function<std::shared_ptr<const CmpSurrogate>()> surrogate_factory;
  const std::atomic<bool>* interrupt = nullptr;
};

struct FullChipResult {
  std::size_t rows = 0;  ///< chip windows (y)
  std::size_t cols = 0;  ///< chip windows (x)
  std::vector<GridD> x;  ///< committed per-layer fill, rows x cols
  std::size_t tiles_total = 0;
  std::size_t tiles_solved = 0;  ///< solved this run
  std::size_t tiles_loaded = 0;  ///< restored from the store this run
  int stitch_passes = 0;         ///< refinement passes executed
  double final_seam = 0.0;       ///< worst disagreement after the last pass
  double runtime_s = 0.0;
  double tile_seconds = 0.0;  ///< summed wall-clock of tile solves
  bool timed_out = false;
  bool degraded = false;
  long evaluations = 0;
};

/// Cuts one tile's geometry out of the indexed full-chip GLF: every record
/// intersecting the halo region, *unclipped*, shifted so the halo's corner
/// is the local origin; the local extents span exactly the halo windows.
/// Loading unclipped rects keeps per-window clipping and perimeter
/// attribution identical to the monolithic extraction.
Layout load_tile_layout(const GlfRegionIndex& index, const TileRegion& tile,
                        double window_um);

/// Runs the tiled fill over an indexed GLF.  Throws ErrorException for
/// unusable inputs (unknown method, missing store_dir, store mismatch) and
/// on operator interrupt (kInterrupted) — solved tiles stay in the store
/// either way, so the run is resumable.
FullChipResult fullchip_fill(const GlfRegionIndex& index,
                             const FullChipOptions& options);

/// Streams `result` into `out_path`: original geometry is copied verbatim
/// from the indexed input, committed fill is realized window by window with
/// the same kernel the monolithic path uses (append_window_dummies), and
/// the write is atomic.  Returns the number of dummies written.
std::size_t write_fullchip_result(const GlfRegionIndex& index,
                                  const std::string& out_path,
                                  const FullChipResult& result,
                                  double window_um,
                                  double min_dummy_edge_um = 4.0);

}  // namespace neurfill::fullchip
