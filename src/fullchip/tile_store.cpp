#include "fullchip/tile_store.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <system_error>
#include <utility>

#include "common/checkpoint.hpp"
#include "common/fault.hpp"

namespace neurfill::fullchip {

namespace {

constexpr std::uint32_t kManifestVersion = 1;
constexpr std::uint32_t kTileVersion = 1;

Error store_error(ErrorCode code, const std::string& path,
                  const std::string& what) {
  return Error(code, "fullchip.store", "'" + path + "': " + what);
}

std::string errno_text() {
  return std::error_code(errno, std::generic_category()).message();
}

std::vector<char> encode_manifest(const StoreManifest& m) {
  ByteWriter w;
  w.u32(kManifestVersion);
  w.str(m.design_name);
  w.str(m.method);
  w.u64(m.chip_rows);
  w.u64(m.chip_cols);
  w.u64(m.num_layers);
  w.i64(m.tile_windows);
  w.i64(m.halo_windows);
  w.f64(m.window_um);
  w.f64(m.stitch_tol);
  w.i64(m.max_stitch_passes);
  return w.take();
}

bool decode_manifest(const std::vector<char>& bytes, StoreManifest* out) {
  ByteReader r(bytes);
  if (r.u32() != kManifestVersion) return false;
  out->design_name = r.str();
  out->method = r.str();
  out->chip_rows = r.u64();
  out->chip_cols = r.u64();
  out->num_layers = r.u64();
  out->tile_windows = r.i64();
  out->halo_windows = r.i64();
  out->window_um = r.f64();
  out->stitch_tol = r.f64();
  out->max_stitch_passes = r.i64();
  return r.ok() && r.at_end();
}

bool manifests_equal(const StoreManifest& a, const StoreManifest& b) {
  return a.design_name == b.design_name && a.method == b.method &&
         a.chip_rows == b.chip_rows && a.chip_cols == b.chip_cols &&
         a.num_layers == b.num_layers && a.tile_windows == b.tile_windows &&
         a.halo_windows == b.halo_windows && a.window_um == b.window_um &&
         a.stitch_tol == b.stitch_tol &&
         a.max_stitch_passes == b.max_stitch_passes;
}

/// Removes every store artifact (tile records, snapshots, manifest, stray
/// temp files) so a fresh run cannot pick up records from an earlier one.
[[nodiscard]] Expected<void> clear_store(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (!d) return store_error(ErrorCode::kIo, dir, "opendir failed: " + errno_text());
  std::vector<std::string> doomed;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    const bool ours = name == "manifest.nfcp" ||
                      name.rfind("tile_", 0) == 0 ||
                      name.rfind("manifest.nfcp.tmp", 0) == 0;
    if (ours) doomed.push_back(name);
  }
  ::closedir(d);
  for (const std::string& name : doomed) ::unlink((dir + "/" + name).c_str());
  return Expected<void>();
}

}  // namespace

TileStore::TileStore(std::string dir) : dir_(std::move(dir)) {}

[[nodiscard]] Expected<void> TileStore::open(const StoreManifest& manifest,
                                             bool resume) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
    return store_error(ErrorCode::kIo, dir_, "mkdir failed: " + errno_text());

  const std::string manifest_path = dir_ + "/manifest.nfcp";
  if (resume) {
    Expected<CheckpointReader> reader = CheckpointReader::open(manifest_path);
    if (!reader.ok()) {
      if (reader.error().code == ErrorCode::kNotFound) {
        // Nothing to resume: fall through to the fresh-run path.
      } else {
        return reader.error();
      }
    } else {
      Expected<const std::vector<char>*> payload = reader->section("manifest");
      if (!payload.ok()) return payload.error();
      StoreManifest existing;
      if (!decode_manifest(**payload, &existing))
        return store_error(ErrorCode::kCorrupt, manifest_path,
                           "manifest payload failed validation");
      if (!manifests_equal(existing, manifest))
        return store_error(
            ErrorCode::kInvalidArgument, manifest_path,
            "tile store belongs to a different run (design '" +
                existing.design_name + "', method '" + existing.method +
                "', " + std::to_string(existing.chip_rows) + "x" +
                std::to_string(existing.chip_cols) + " windows, tile " +
                std::to_string(existing.tile_windows) + ", halo " +
                std::to_string(existing.halo_windows) + ")");
      return Expected<void>();
    }
  }
  Expected<void> cleared = clear_store(dir_);
  if (!cleared.ok()) return cleared;
  CheckpointWriter writer;
  writer.add_section("manifest", encode_manifest(manifest));
  return writer.commit(manifest_path);
}

std::string TileStore::tile_path(int pass, std::size_t ti,
                                 std::size_t tj) const {
  return dir_ + "/tile_p" + std::to_string(pass) + "_r" + std::to_string(ti) +
         "_c" + std::to_string(tj) + ".nfcp";
}

std::string TileStore::tile_snapshot_path(int pass, std::size_t ti,
                                          std::size_t tj) const {
  return dir_ + "/tile_p" + std::to_string(pass) + "_r" + std::to_string(ti) +
         "_c" + std::to_string(tj) + ".snap";
}

[[nodiscard]] Expected<void> TileStore::save_tile(
    int pass, std::size_t ti, std::size_t tj, const TileRecord& record) const {
  const std::string path = tile_path(pass, ti, tj);
  if (NF_FAULT("fullchip.tile_write"))
    return store_error(ErrorCode::kIo, path, "tile write failed: injected");
  ByteWriter w;
  w.u32(kTileVersion);
  w.u32(record.timed_out ? 1u : 0u);
  w.u32(record.degraded ? 1u : 0u);
  w.i64(record.evaluations);
  w.u64(record.x.size());
  for (const GridD& g : record.x) {
    w.u64(g.rows());
    w.u64(g.cols());
    w.f64_vec(std::vector<double>(g.data(), g.data() + g.size()));
  }
  CheckpointWriter writer;
  writer.add_section("tile", w.take());
  return writer.commit(path);
}

[[nodiscard]] Expected<TileRecord> TileStore::load_tile(
    int pass, std::size_t ti, std::size_t tj, std::size_t rows,
    std::size_t cols, std::size_t layers) const {
  const std::string path = tile_path(pass, ti, tj);
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  if (!reader.ok()) return reader.error();
  if (NF_FAULT("fullchip.tile_read"))
    return store_error(ErrorCode::kCorrupt, path, "tile read failed: injected");
  Expected<const std::vector<char>*> payload = reader->section("tile");
  if (!payload.ok()) return payload.error();
  ByteReader r(**payload);
  if (r.u32() != kTileVersion)
    return store_error(ErrorCode::kCorrupt, path, "unsupported tile version");
  TileRecord record;
  record.timed_out = r.u32() != 0;
  record.degraded = r.u32() != 0;
  record.evaluations = r.i64();
  const std::uint64_t nlayers = r.u64();
  if (!r.ok() || nlayers != layers)
    return store_error(ErrorCode::kCorrupt, path, "layer count mismatch");
  record.x.reserve(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    const std::uint64_t grows = r.u64();
    const std::uint64_t gcols = r.u64();
    const std::vector<double> values = r.f64_vec();
    if (!r.ok() || grows != rows || gcols != cols ||
        values.size() != rows * cols)
      return store_error(ErrorCode::kCorrupt, path,
                         "tile grid shape mismatch (layer " +
                             std::to_string(l) + ")");
    GridD g(rows, cols);
    for (std::size_t k = 0; k < values.size(); ++k) {
      const double v = values[k];
      if (!std::isfinite(v))
        return store_error(ErrorCode::kCorrupt, path,
                           "non-finite fill value in layer " +
                               std::to_string(l));
      g[k] = v;
    }
    record.x.push_back(std::move(g));
  }
  if (!r.at_end())
    return store_error(ErrorCode::kCorrupt, path,
                       "trailing bytes after tile payload");
  return record;
}

}  // namespace neurfill::fullchip
