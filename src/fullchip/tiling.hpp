#pragma once

// Tile decomposition of the full-chip window grid (docs/fullchip.md).
//
// The chip's R x C filling windows are partitioned into square tiles of
// `tile_windows` windows per side (edge tiles are smaller when the chip
// extent is not a multiple).  Each tile is solved over an enlarged *halo*
// region: the core plus `halo_windows` extra window rings, clipped at the
// chip boundary.  The halo width derives from the CMP planarization length:
// a pad deforms over roughly the characteristic length L around a window,
// so windows further than ceil(2L / window) windows away have negligible
// influence on the core's post-CMP heights — that is what makes solving
// tiles independently a controlled approximation of the monolithic solve.
//
// All ranges are half-open window-index ranges into the chip grid; rect()
// helpers convert to micrometre regions for geometry loads.

#include <cstddef>

#include "geom/rect.hpp"

namespace neurfill::fullchip {

/// One tile: its core (the windows this tile owns in the committed result)
/// and its halo (the windows it solves over).  core is always contained in
/// halo; both are clipped to the chip grid.
struct TileRegion {
  std::size_t ti = 0;  ///< tile row
  std::size_t tj = 0;  ///< tile column
  std::size_t core_row0 = 0, core_row1 = 0;  ///< [row0, row1) chip windows
  std::size_t core_col0 = 0, core_col1 = 0;
  std::size_t halo_row0 = 0, halo_row1 = 0;
  std::size_t halo_col0 = 0, halo_col1 = 0;

  std::size_t halo_rows() const { return halo_row1 - halo_row0; }
  std::size_t halo_cols() const { return halo_col1 - halo_col0; }
  std::size_t core_rows() const { return core_row1 - core_row0; }
  std::size_t core_cols() const { return core_col1 - core_col0; }

  /// True when chip window (row, col) lies in the halo but not the core —
  /// i.e. it is owned by a neighbouring tile.
  bool in_halo_fringe(std::size_t row, std::size_t col) const {
    const bool in_halo = row >= halo_row0 && row < halo_row1 &&
                         col >= halo_col0 && col < halo_col1;
    const bool in_core = row >= core_row0 && row < core_row1 &&
                         col >= core_col0 && col < core_col1;
    return in_halo && !in_core;
  }

  /// Micrometre region covered by the halo windows.
  Rect halo_rect(double window_um) const {
    return Rect(static_cast<double>(halo_col0) * window_um,
                static_cast<double>(halo_row0) * window_um,
                static_cast<double>(halo_col1) * window_um,
                static_cast<double>(halo_row1) * window_um);
  }
};

/// The full decomposition.  Construction is pure arithmetic; the same
/// (chip_rows, chip_cols, tile_windows, halo_windows) always produce the
/// same tiles, which the tile-store manifest relies on for resume checks.
class TileGrid {
 public:
  TileGrid(std::size_t chip_rows, std::size_t chip_cols, int tile_windows,
           int halo_windows, double window_um);

  std::size_t chip_rows() const { return chip_rows_; }
  std::size_t chip_cols() const { return chip_cols_; }
  std::size_t tile_rows() const { return tile_rows_; }
  std::size_t tile_cols() const { return tile_cols_; }
  std::size_t num_tiles() const { return tile_rows_ * tile_cols_; }
  int tile_windows() const { return tile_windows_; }
  int halo_windows() const { return halo_windows_; }
  double window_um() const { return window_um_; }

  TileRegion tile(std::size_t ti, std::size_t tj) const;
  TileRegion tile_by_index(std::size_t t) const {
    return tile(t / tile_cols_, t % tile_cols_);
  }

 private:
  std::size_t chip_rows_ = 0;
  std::size_t chip_cols_ = 0;
  std::size_t tile_rows_ = 0;
  std::size_t tile_cols_ = 0;
  int tile_windows_ = 0;
  int halo_windows_ = 0;
  double window_um_ = 0.0;
};

/// Halo width in windows derived from the CMP planarization length: the
/// pressure kernel couples a window to roughly 2L of surroundings, so the
/// halo covers ceil(2 * char_length_um / window_um) windows (at least 1).
int auto_halo_windows(double char_length_um, double window_um);

}  // namespace neurfill::fullchip
