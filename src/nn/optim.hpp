#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace neurfill::nn {

/// Optimizer base: owns handles to the parameter tensors and updates their
/// data in place from the accumulated gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

 protected:
  std::vector<Tensor> params_;
};

/// SGD with classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void step() override;
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_, momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam [Kingma & Ba 2015] with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;
  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

  /// Full optimizer state (step count + first/second moments), for
  /// checkpoint/resume.  restore_state returns false (leaving the optimizer
  /// untouched) when the moment layout does not match the parameters.
  struct State {
    std::int64_t t = 0;
    std::vector<std::vector<float>> m, v;
  };
  State export_state() const { return State{t_, m_, v_}; }
  bool restore_state(const State& st) {
    if (st.m.size() != m_.size() || st.v.size() != v_.size()) return false;
    for (std::size_t i = 0; i < m_.size(); ++i)
      if (st.m[i].size() != m_[i].size() || st.v[i].size() != v_[i].size())
        return false;
    t_ = st.t;
    m_ = st.m;
    v_ = st.v;
    return true;
  }

 private:
  float lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace neurfill::nn
