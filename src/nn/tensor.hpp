#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace neurfill::nn {

class Tensor;

namespace detail {

/// Shared tensor storage plus the autograd tape node.  A tensor produced by
/// an op keeps handles to its parents and a closure that scatters the output
/// gradient back into the parents' gradients.
struct TensorImpl {
  std::vector<int> shape;
  std::vector<float> data;
  std::vector<float> grad;  ///< lazily allocated, same numel as data
  bool requires_grad = false;

  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Propagates this node's grad into the parents' grads.  Null for leaves.
  std::function<void()> backward_fn;

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (const int d : shape) n *= d;
    return n;
  }
  void ensure_grad() {
    if (grad.empty()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace detail

/// A cheap value-semantics handle to shared float storage with reverse-mode
/// autodiff.  Up to 4 dimensions; convolution ops interpret shapes as
/// (N, C, H, W).  Ops are pure: they never mutate their inputs.
class Tensor {
 public:
  Tensor() = default;
  /// Allocates zero-initialized storage.
  explicit Tensor(std::vector<int> shape, bool requires_grad = false);

  static Tensor zeros(std::vector<int> shape, bool requires_grad = false);
  static Tensor ones(std::vector<int> shape, bool requires_grad = false);
  static Tensor full(std::vector<int> shape, float value,
                     bool requires_grad = false);
  static Tensor from_data(std::vector<int> shape, std::vector<float> values,
                          bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int>& shape() const {
    NF_CHECK(defined(), "Tensor::shape on undefined tensor");
    return impl_->shape;
  }
  std::int64_t numel() const {
    NF_CHECK(defined(), "Tensor::numel on undefined tensor");
    return impl_->numel();
  }
  int dim(int i) const {
    NF_CHECK(defined(), "Tensor::dim on undefined tensor");
    NF_CHECK_BOUNDS(i, impl_->shape.size());
    return impl_->shape[static_cast<std::size_t>(i)];
  }
  int ndim() const {
    NF_CHECK(defined(), "Tensor::ndim on undefined tensor");
    return static_cast<int>(impl_->shape.size());
  }

  /// Tensor is a shared handle; constness is shallow (like shared_ptr), so
  /// data()/grad() are const members returning mutable storage.
  float* data() const {
    NF_CHECK(defined(), "Tensor::data on undefined tensor");
    return impl_->data.data();
  }
  float item() const;  ///< value of a 1-element tensor

  bool requires_grad() const { return impl_->requires_grad; }
  void set_requires_grad(bool v) const { impl_->requires_grad = v; }

  /// Gradient buffer (allocated zero on first access).
  float* grad() const;
  const std::vector<float>& grad_vector() const { return impl_->grad; }
  bool has_grad() const { return !impl_->grad.empty(); }
  void zero_grad() const;

  /// Reverse-mode sweep from a scalar (1-element) tensor: seeds d(self)=1
  /// and runs every recorded backward closure in reverse topological order.
  void backward();

  /// Detached copy sharing no storage or tape history.
  Tensor detach() const;

  std::shared_ptr<detail::TensorImpl> impl() const { return impl_; }

  /// Op helper: wires `out` as the child of `inputs` with the given
  /// gradient-propagation closure (only recorded if some input requires
  /// grad).
  static void attach_backward(Tensor& out, const std::vector<Tensor>& inputs,
                              std::function<void()> backward);

 private:
  std::shared_ptr<detail::TensorImpl> impl_;
};

/// Shape utilities shared by the op implementations.
std::string shape_to_string(const std::vector<int>& shape);
bool same_shape(const Tensor& a, const Tensor& b);

}  // namespace neurfill::nn
