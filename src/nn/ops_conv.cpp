#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "nn/backend/backend.hpp"
#include "nn/ops.hpp"

// Structured ops (matmul/linear/conv2d/pool/upsample/group_norm).  This
// layer owns shape validation and the autograd tape; every kernel — forward
// and backward — dispatches through the active compute backend
// (nn/backend/backend.hpp), so the arithmetic here is whatever the backend
// guarantees (the default CpuBackend: bitwise deterministic at any thread
// count, docs/runtime.md).

namespace neurfill::nn {

namespace {

Conv2dGeom make_conv_geom(int N, int C, int H, int W, int O, int kh, int kw,
                          int stride, int padding, int Hout, int Wout) {
  Conv2dGeom g;
  g.batch = N;
  g.in_channels = C;
  g.height = H;
  g.width = W;
  g.out_channels = O;
  g.kernel_h = kh;
  g.kernel_w = kw;
  g.stride = stride;
  g.padding = padding;
  g.out_height = Hout;
  g.out_width = Wout;
  return g;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 2 || a.dim(1) != b.dim(0))
    throw std::invalid_argument("matmul: need (M,K)x(K,N)");
  const int M = a.dim(0), K = a.dim(1), N = b.dim(1);
  Tensor out({M, N});
  backend().gemm(GemmKind::kNN, M, N, K, a.data(), b.data(), out.data(),
                 false);
  Tensor::attach_backward(out, {a, b}, [a, b, out = out.impl().get(), M, N, K]() mutable {
    const float* go = out->grad.data();
    if (a.requires_grad())  // dA = dOut (MxN) * B^T (NxK)
      backend().gemm(GemmKind::kNT, M, K, N, go, b.data(), a.grad(), true);
    if (b.requires_grad())  // dB = A^T (KxM) * dOut (MxN)
      backend().gemm(GemmKind::kTN, K, N, M, a.data(), go, b.grad(), true);
  });
  return out;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  if (x.ndim() != 2 || w.ndim() != 2 || x.dim(1) != w.dim(1))
    throw std::invalid_argument("linear: need x(N,K), w(O,K)");
  const int N = x.dim(0), K = x.dim(1), O = w.dim(0);
  if (b.defined() && (b.ndim() != 1 || b.dim(0) != O))
    throw std::invalid_argument("linear: bias shape mismatch");
  Tensor out({N, O});
  backend().gemm(GemmKind::kNT, N, O, K, x.data(), w.data(), out.data(),
                 false);
  if (b.defined()) {
    float* po = out.data();
    for (int n = 0; n < N; ++n)
      for (int o = 0; o < O; ++o) po[n * O + o] += b.data()[o];
  }
  std::vector<Tensor> inputs{x, w};
  if (b.defined()) inputs.push_back(b);
  Tensor::attach_backward(out, inputs, [x, w, b, out = out.impl().get(), N, K, O]() mutable {
    const float* go = out->grad.data();
    if (x.requires_grad())  // dX = dOut (N,O) * W (O,K)
      backend().gemm(GemmKind::kNN, N, K, O, go, w.data(), x.grad(), true);
    if (w.requires_grad())  // dW = dOut^T (O,N) * X (N,K)
      backend().gemm(GemmKind::kTN, O, K, N, go, x.data(), w.grad(), true);
    if (b.defined() && b.requires_grad()) {
      float* gb = b.grad();
      for (int n = 0; n < N; ++n)
        for (int o = 0; o < O; ++o) gb[o] += go[n * O + o];
    }
  });
  return out;
}

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              int stride, int padding) {
  if (x.ndim() != 4 || weight.ndim() != 4)
    throw std::invalid_argument("conv2d: need 4-D input and weight");
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const int O = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  if (weight.dim(1) != C)
    throw std::invalid_argument("conv2d: channel mismatch");
  if (stride < 1) throw std::invalid_argument("conv2d: bad stride");
  const int Hout = (H + 2 * padding - kh) / stride + 1;
  const int Wout = (W + 2 * padding - kw) / stride + 1;
  if (Hout <= 0 || Wout <= 0)
    throw std::invalid_argument("conv2d: kernel larger than padded input");
  if (bias.defined() && (bias.ndim() != 1 || bias.dim(0) != O))
    throw std::invalid_argument("conv2d: bias shape mismatch");

  Tensor out({N, O, Hout, Wout});
  const int K = C * kh * kw;
  const int cols = Hout * Wout;
  // GEMM shape agreement: weight flattens to (O, K), each batch output to
  // (O, cols).  Violations here would stream past the tensor buffers.
  NF_CHECK(weight.numel() == static_cast<std::int64_t>(O) * K,
           "conv2d: weight numel %lld != O*K = %d*%d",
           static_cast<long long>(weight.numel()), O, K);
  NF_CHECK(out.numel() == static_cast<std::int64_t>(N) * O * cols,
           "conv2d: output numel %lld != N*O*HoutWout = %d*%d*%d",
           static_cast<long long>(out.numel()), N, O, cols);
  const Conv2dGeom geom =
      make_conv_geom(N, C, H, W, O, kh, kw, stride, padding, Hout, Wout);
  backend().conv2d_fwd(geom, x.data(), weight.data(),
                       bias.defined() ? bias.data() : nullptr, out.data());

  std::vector<Tensor> inputs{x, weight};
  if (bias.defined()) inputs.push_back(bias);
  Tensor::attach_backward(
      out, inputs, [x, weight, bias, out = out.impl().get(), geom]() mutable {
        backend().conv2d_bwd(
            geom, x.data(), weight.data(), out->grad.data(),
            x.requires_grad() ? x.grad() : nullptr,
            weight.requires_grad() ? weight.grad() : nullptr,
            (bias.defined() && bias.requires_grad()) ? bias.grad() : nullptr);
      });
  return out;
}

Tensor maxpool2x2(const Tensor& x) {
  if (x.ndim() != 4) throw std::invalid_argument("maxpool2x2: need 4-D input");
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  if (H % 2 != 0 || W % 2 != 0)
    throw std::invalid_argument("maxpool2x2: H and W must be even");
  const int Ho = H / 2, Wo = W / 2;
  Tensor out({N, C, Ho, Wo});
  auto indices = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(out.numel()));
  backend().maxpool2x2_fwd(static_cast<std::int64_t>(N) * C, H, W, x.data(),
                           out.data(), indices->data());
  Tensor::attach_backward(out, {x}, [x, out = out.impl().get(), indices]() mutable {
    const float* go = out->grad.data();
    float* gx = x.grad();
    for (std::size_t i = 0; i < indices->size(); ++i)
      gx[(*indices)[i]] += go[i];
  });
  return out;
}

Tensor upsample_nearest2x(const Tensor& x) {
  if (x.ndim() != 4)
    throw std::invalid_argument("upsample_nearest2x: need 4-D input");
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  Tensor out({N, C, 2 * H, 2 * W});
  backend().upsample2x_fwd(static_cast<std::int64_t>(N) * C, H, W, x.data(),
                           out.data());
  Tensor::attach_backward(out, {x}, [x, out = out.impl().get(), N, C, H, W]() mutable {
    const float* go = out->grad.data();
    float* gx = x.grad();
    for (int nc = 0; nc < N * C; ++nc) {
      const float* gp = go + static_cast<std::int64_t>(nc) * 4 * H * W;
      float* sp = gx + static_cast<std::int64_t>(nc) * H * W;
      for (int i = 0; i < H; ++i)
        for (int j = 0; j < W; ++j) {
          const std::int64_t b = static_cast<std::int64_t>(2 * i) * 2 * W + 2 * j;
          sp[i * W + j] += gp[b] + gp[b + 1] + gp[b + 2 * W] + gp[b + 2 * W + 1];
        }
    }
  });
  return out;
}

Tensor group_norm(const Tensor& x, int groups, const Tensor& gamma,
                  const Tensor& beta, float eps) {
  if (x.ndim() != 4) throw std::invalid_argument("group_norm: need 4-D input");
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  if (groups <= 0 || C % groups != 0)
    throw std::invalid_argument("group_norm: C must be divisible by groups");
  if (gamma.ndim() != 1 || gamma.dim(0) != C || beta.ndim() != 1 ||
      beta.dim(0) != C)
    throw std::invalid_argument("group_norm: gamma/beta must be (C)");
  const int cpg = C / groups;
  const std::int64_t gsize = static_cast<std::int64_t>(cpg) * H * W;
  Tensor out(x.shape());
  auto mean_v = std::make_shared<std::vector<double>>(
      static_cast<std::size_t>(N) * groups);
  auto istd_v = std::make_shared<std::vector<double>>(
      static_cast<std::size_t>(N) * groups);
  GroupNormGeom geom;
  geom.batch = N;
  geom.channels = C;
  geom.height = H;
  geom.width = W;
  geom.groups = groups;
  geom.eps = eps;
  backend().group_norm_fwd(geom, x.data(), gamma.data(), beta.data(),
                           out.data(), mean_v->data(), istd_v->data());
  Tensor::attach_backward(
      out, {x, gamma, beta},
      [x, gamma, beta, out = out.impl().get(), N, C, H, W, groups, cpg, gsize, mean_v,
       istd_v]() mutable {
        const float* go = out->grad.data();
        const float* pxg = x.data();
        for (int n = 0; n < N; ++n) {
          for (int g = 0; g < groups; ++g) {
            const double m = (*mean_v)[static_cast<std::size_t>(n * groups + g)];
            const double istd = (*istd_v)[static_cast<std::size_t>(n * groups + g)];
            const float* xb =
                pxg + (static_cast<std::int64_t>(n) * C + g * cpg) * H * W;
            const float* gb =
                go + (static_cast<std::int64_t>(n) * C + g * cpg) * H * W;
            // dgamma/dbeta, plus the two group-wide sums needed for dx.
            double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
            for (int c = 0; c < cpg; ++c) {
              const double gm = gamma.data()[g * cpg + c];
              const float* xc = xb + static_cast<std::int64_t>(c) * H * W;
              const float* gc = gb + static_cast<std::int64_t>(c) * H * W;
              double dg = 0.0, db = 0.0;
              for (int i = 0; i < H * W; ++i) {
                const double xhat = (static_cast<double>(xc[i]) - m) * istd;
                const double dxhat = static_cast<double>(gc[i]) * gm;
                sum_dxhat += dxhat;
                sum_dxhat_xhat += dxhat * xhat;
                dg += static_cast<double>(gc[i]) * xhat;
                db += static_cast<double>(gc[i]);
              }
              if (gamma.requires_grad())
                gamma.grad()[g * cpg + c] += static_cast<float>(dg);
              if (beta.requires_grad())
                beta.grad()[g * cpg + c] += static_cast<float>(db);
            }
            if (x.requires_grad()) {
              float* gx = x.grad() +
                          (static_cast<std::int64_t>(n) * C + g * cpg) * H * W;
              const double inv_n = 1.0 / static_cast<double>(gsize);
              for (int c = 0; c < cpg; ++c) {
                const double gm = gamma.data()[g * cpg + c];
                const float* xc = xb + static_cast<std::int64_t>(c) * H * W;
                const float* gc = gb + static_cast<std::int64_t>(c) * H * W;
                float* gxc = gx + static_cast<std::int64_t>(c) * H * W;
                for (int i = 0; i < H * W; ++i) {
                  const double xhat = (static_cast<double>(xc[i]) - m) * istd;
                  const double dxhat = static_cast<double>(gc[i]) * gm;
                  gxc[i] += static_cast<float>(
                      istd * (dxhat - inv_n * sum_dxhat -
                              xhat * inv_n * sum_dxhat_xhat));
                }
              }
            }
          }
        }
      });
  return out;
}

}  // namespace neurfill::nn
