#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "nn/gemm.hpp"
#include "nn/ops.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace neurfill::nn {

namespace {

/// Convolutions whose per-sample unfold matrix (C*kh*kw rows x Hout*Wout
/// columns) is at or below this many elements run entirely inside a runtime
/// SerialRegion — im2col/col2im, the packed GEMM, and the bias loops all
/// degrade to inline blocks.  Same treatment as the contact solver's
/// kSerialSolveCells (PR 4): a UNet-encoder-sized layer (16ch 64x64, k3 —
/// the bench shape) splits each sub-loop into blocks of a few hundred
/// microseconds, and at 4 threads the per-loop fork/join handshakes cost
/// more than the parallelism saves (conv2d_fwd_speedup_4t was 0.82 in the
/// old BENCH_runtime.json).  The primitives are bitwise-deterministic, so
/// forcing serial execution changes scheduling only, never results.
constexpr std::size_t kSerialConvUnfoldElems = 1u << 20;

/// Output extent / unfold-geometry agreement shared by im2col and col2im.
/// The callers derive (Hout, Wout) from (H, W, kernel, stride, pad); a
/// mismatch here means the GEMM that follows would read or scatter past the
/// unfolded buffer.
void check_unfold_geometry(const char* name, int H, int W, int kh, int kw,
                           int stride, int pad, int Hout, int Wout) {
  NF_CHECK(stride >= 1, "%s: stride %d", name, stride);
  NF_CHECK(pad >= 0, "%s: negative padding %d", name, pad);
  NF_CHECK((H + 2 * pad - kh) / stride + 1 == Hout &&
               (W + 2 * pad - kw) / stride + 1 == Wout,
           "%s: output %dx%d disagrees with input %dx%d kernel %dx%d "
           "stride %d pad %d",
           name, Hout, Wout, H, W, kh, kw, stride, pad);
}

/// im2col: unfold (C,H,W) into a (C*kh*kw, Hout*Wout) matrix for kernel
/// (kh,kw), stride s, symmetric zero padding p.
void im2col(const float* x, int C, int H, int W, int kh, int kw, int stride,
            int pad, int Hout, int Wout, float* col) {
  check_unfold_geometry("im2col", H, W, kh, kw, stride, pad, Hout, Wout);
  const int cols = Hout * Wout;
  // Each unfolded row (c, ki, kj) writes a disjoint `cols`-wide slice, so
  // the plane loop parallelizes directly; one plane costs ~1.5 ns per
  // output element (predicated copy), so the grain comes from the cost
  // model and small unfolds run inline.
  const std::size_t planes = static_cast<std::size_t>(C * kh * kw);
  runtime::parallel_for(
      runtime::grain_for_cost(1.5 * static_cast<double>(cols), planes), planes,
      [=](std::size_t p0, std::size_t p1) {
        for (std::size_t p = p0; p < p1; ++p) {
          const int c = static_cast<int>(p) / (kh * kw);
          const int ki = (static_cast<int>(p) / kw) % kh;
          const int kj = static_cast<int>(p) % kw;
          float* dst = col + p * static_cast<std::size_t>(cols);
          for (int oi = 0; oi < Hout; ++oi) {
            const int ii = oi * stride + ki - pad;
            if (ii < 0 || ii >= H) {
              std::memset(dst + oi * Wout, 0,
                          sizeof(float) * static_cast<std::size_t>(Wout));
              continue;
            }
            const float* src = x + (c * H + ii) * W;
            for (int oj = 0; oj < Wout; ++oj) {
              const int jj = oj * stride + kj - pad;
              dst[oi * Wout + oj] = (jj >= 0 && jj < W) ? src[jj] : 0.0f;
            }
          }
        }
      });
}

/// col2im: adjoint of im2col; accumulates into x.
void col2im(const float* col, int C, int H, int W, int kh, int kw, int stride,
            int pad, int Hout, int Wout, float* x) {
  check_unfold_geometry("col2im", H, W, kh, kw, stride, pad, Hout, Wout);
  const int cols = Hout * Wout;
  // The (ki, kj) scatters of one channel overlap each other but never cross
  // channels, so the accumulation parallelizes over c only; within a
  // channel the scatter order is the fixed serial one.  One channel costs
  // ~2 ns per (kernel tap x output element) accumulate.
  const double chan_cost_ns = 2.0 * static_cast<double>(kh * kw) *
                              static_cast<double>(cols);
  runtime::parallel_for(
      runtime::grain_for_cost(chan_cost_ns, static_cast<std::size_t>(C)),
      static_cast<std::size_t>(C), [=](std::size_t c0, std::size_t c1) {
  for (int c = static_cast<int>(c0); c < static_cast<int>(c1); ++c) {
    for (int ki = 0; ki < kh; ++ki) {
      for (int kj = 0; kj < kw; ++kj) {
        const float* src = col + ((c * kh + ki) * kw + kj) * cols;
        for (int oi = 0; oi < Hout; ++oi) {
          const int ii = oi * stride + ki - pad;
          if (ii < 0 || ii >= H) continue;
          float* dst = x + (c * H + ii) * W;
          for (int oj = 0; oj < Wout; ++oj) {
            const int jj = oj * stride + kj - pad;
            if (jj >= 0 && jj < W) dst[jj] += src[oi * Wout + oj];
          }
        }
      }
    }
  }
  });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 2 || a.dim(1) != b.dim(0))
    throw std::invalid_argument("matmul: need (M,K)x(K,N)");
  const int M = a.dim(0), K = a.dim(1), N = b.dim(1);
  Tensor out({M, N});
  gemm_nn(M, N, K, a.data(), b.data(), out.data(), false);
  Tensor::attach_backward(out, {a, b}, [a, b, out = out.impl().get(), M, N, K]() mutable {
    const float* go = out->grad.data();
    if (a.requires_grad())  // dA = dOut (MxN) * B^T (NxK)
      gemm_nt(M, K, N, go, b.data(), a.grad(), true);
    if (b.requires_grad())  // dB = A^T (KxM) * dOut (MxN)
      gemm_tn(K, N, M, a.data(), go, b.grad(), true);
  });
  return out;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  if (x.ndim() != 2 || w.ndim() != 2 || x.dim(1) != w.dim(1))
    throw std::invalid_argument("linear: need x(N,K), w(O,K)");
  const int N = x.dim(0), K = x.dim(1), O = w.dim(0);
  if (b.defined() && (b.ndim() != 1 || b.dim(0) != O))
    throw std::invalid_argument("linear: bias shape mismatch");
  Tensor out({N, O});
  gemm_nt(N, O, K, x.data(), w.data(), out.data(), false);
  if (b.defined()) {
    float* po = out.data();
    for (int n = 0; n < N; ++n)
      for (int o = 0; o < O; ++o) po[n * O + o] += b.data()[o];
  }
  std::vector<Tensor> inputs{x, w};
  if (b.defined()) inputs.push_back(b);
  Tensor::attach_backward(out, inputs, [x, w, b, out = out.impl().get(), N, K, O]() mutable {
    const float* go = out->grad.data();
    if (x.requires_grad())  // dX = dOut (N,O) * W (O,K)
      gemm_nn(N, K, O, go, w.data(), x.grad(), true);
    if (w.requires_grad())  // dW = dOut^T (O,N) * X (N,K)
      gemm_tn(O, K, N, go, x.data(), w.grad(), true);
    if (b.defined() && b.requires_grad()) {
      float* gb = b.grad();
      for (int n = 0; n < N; ++n)
        for (int o = 0; o < O; ++o) gb[o] += go[n * O + o];
    }
  });
  return out;
}

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              int stride, int padding) {
  if (x.ndim() != 4 || weight.ndim() != 4)
    throw std::invalid_argument("conv2d: need 4-D input and weight");
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const int O = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  if (weight.dim(1) != C)
    throw std::invalid_argument("conv2d: channel mismatch");
  if (stride < 1) throw std::invalid_argument("conv2d: bad stride");
  const int Hout = (H + 2 * padding - kh) / stride + 1;
  const int Wout = (W + 2 * padding - kw) / stride + 1;
  if (Hout <= 0 || Wout <= 0)
    throw std::invalid_argument("conv2d: kernel larger than padded input");
  if (bias.defined() && (bias.ndim() != 1 || bias.dim(0) != O))
    throw std::invalid_argument("conv2d: bias shape mismatch");

  NF_TRACE_SPAN("nn.conv2d");
  Tensor out({N, O, Hout, Wout});
  const int K = C * kh * kw;
  const int cols = Hout * Wout;
  // GEMM shape agreement: weight flattens to (O, K), each batch output to
  // (O, cols).  Violations here would stream past the tensor buffers.
  NF_CHECK(weight.numel() == static_cast<std::int64_t>(O) * K,
           "conv2d: weight numel %lld != O*K = %d*%d",
           static_cast<long long>(weight.numel()), O, K);
  NF_CHECK(out.numel() == static_cast<std::int64_t>(N) * O * cols,
           "conv2d: output numel %lld != N*O*HoutWout = %d*%d*%d",
           static_cast<long long>(out.numel()), N, O, cols);
  // Persistent unfold scratch: the (K, cols) im2col matrix is rebuilt for
  // every batch element of every conv in the network, so it lives in a
  // grow-only thread-local aligned buffer instead of a per-call vector —
  // zero allocations in steady state, and 64-byte alignment feeds the
  // packed GEMM full cache lines.
  static thread_local AlignedBuffer<float> tls_col;
  const std::size_t unfold_elems = static_cast<std::size_t>(K) * cols;
  float* col = tls_col.ensure(unfold_elems);
  // Small layers fork no jobs at all (see kSerialConvUnfoldElems above).
  std::optional<runtime::ThreadPool::SerialRegion> serial;
  if (unfold_elems <= kSerialConvUnfoldElems) serial.emplace();
  const std::size_t bias_grain = runtime::grain_for_cost(
      1.0 * static_cast<double>(cols), static_cast<std::size_t>(O));
  for (int n = 0; n < N; ++n) {
    im2col(x.data() + static_cast<std::int64_t>(n) * C * H * W, C, H, W, kh,
           kw, stride, padding, Hout, Wout, col);
    float* po = out.data() + static_cast<std::int64_t>(n) * O * cols;
    gemm_nn(O, cols, K, weight.data(), col, po, false);
    if (bias.defined()) {
      const float* pb = bias.data();
      runtime::parallel_for(bias_grain, static_cast<std::size_t>(O),
                            [=](std::size_t o0, std::size_t o1) {
                              for (std::size_t o = o0; o < o1; ++o)
                                for (int i = 0; i < cols; ++i)
                                  po[o * static_cast<std::size_t>(cols) + i] +=
                                      pb[o];
                            });
    }
  }

  std::vector<Tensor> inputs{x, weight};
  if (bias.defined()) inputs.push_back(bias);
  Tensor::attach_backward(
      out, inputs,
      [x, weight, bias, out = out.impl().get(), N, C, H, W, O, kh, kw, stride, padding, Hout,
       Wout, K, cols]() mutable {
        NF_TRACE_SPAN("nn.conv2d_backward");
        const float* go = out->grad.data();
        // Same persistent-scratch scheme as the forward pass; separate
        // buffers because dcol is consumed (col2im) while colbuf is still
        // live for the weight gradient.
        static thread_local AlignedBuffer<float> tls_colbuf;
        static thread_local AlignedBuffer<float> tls_dcol;
        const std::size_t bwd_unfold_elems =
            static_cast<std::size_t>(K) * cols;
        float* colbuf = tls_colbuf.ensure(bwd_unfold_elems);
        float* dcol = x.requires_grad() ? tls_dcol.ensure(bwd_unfold_elems)
                                        : nullptr;
        // Same serial threshold as the forward pass: the backward unfolds
        // and GEMMs are the same shapes, plus one col2im scatter.
        std::optional<runtime::ThreadPool::SerialRegion> bwd_serial;
        if (bwd_unfold_elems <= kSerialConvUnfoldElems) bwd_serial.emplace();
        const std::size_t gb_grain = runtime::grain_for_cost(
            1.0 * static_cast<double>(cols), static_cast<std::size_t>(O));
        for (int n = 0; n < N; ++n) {
          const float* gout = go + static_cast<std::int64_t>(n) * O * cols;
          // The unfolded input is recomputed rather than cached: it is the
          // largest intermediate and recomputation is one im2col pass.
          if (weight.requires_grad() || x.requires_grad())
            im2col(x.data() + static_cast<std::int64_t>(n) * C * H * W, C, H,
                   W, kh, kw, stride, padding, Hout, Wout, colbuf);
          if (weight.requires_grad())  // dW += dOut (O,cols) * col^T (cols,K)
            gemm_nt(O, K, cols, gout, colbuf, weight.grad(), true);
          if (x.requires_grad()) {  // dcol = W^T (K,O) * dOut (O,cols)
            gemm_tn(K, cols, O, weight.data(), gout, dcol, false);
            col2im(dcol, C, H, W, kh, kw, stride, padding, Hout, Wout,
                   x.grad() + static_cast<std::int64_t>(n) * C * H * W);
          }
          if (bias.defined() && bias.requires_grad()) {
            float* gb = bias.grad();
            runtime::parallel_for(
                gb_grain, static_cast<std::size_t>(O),
                [=](std::size_t o0, std::size_t o1) {
                  for (std::size_t o = o0; o < o1; ++o) {
                    float acc = gb[o];
                    for (int i = 0; i < cols; ++i)
                      acc += gout[o * static_cast<std::size_t>(cols) + i];
                    gb[o] = acc;
                  }
                });
          }
        }
      });
  return out;
}

Tensor maxpool2x2(const Tensor& x) {
  if (x.ndim() != 4) throw std::invalid_argument("maxpool2x2: need 4-D input");
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  if (H % 2 != 0 || W % 2 != 0)
    throw std::invalid_argument("maxpool2x2: H and W must be even");
  const int Ho = H / 2, Wo = W / 2;
  Tensor out({N, C, Ho, Wo});
  auto indices = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(out.numel()));
  const float* px = x.data();
  float* po = out.data();
  std::int64_t o = 0;
  for (int nc = 0; nc < N * C; ++nc) {
    const float* plane = px + static_cast<std::int64_t>(nc) * H * W;
    for (int i = 0; i < Ho; ++i) {
      for (int j = 0; j < Wo; ++j) {
        const std::int64_t base = static_cast<std::int64_t>(2 * i) * W + 2 * j;
        std::int64_t best = base;
        float bv = plane[base];
        for (const std::int64_t cand :
             {base + 1, base + W, base + W + 1}) {
          if (plane[cand] > bv) {
            bv = plane[cand];
            best = cand;
          }
        }
        po[o] = bv;
        (*indices)[static_cast<std::size_t>(o)] =
            static_cast<std::int64_t>(nc) * H * W + best;
        ++o;
      }
    }
  }
  Tensor::attach_backward(out, {x}, [x, out = out.impl().get(), indices]() mutable {
    const float* go = out->grad.data();
    float* gx = x.grad();
    for (std::size_t i = 0; i < indices->size(); ++i)
      gx[(*indices)[i]] += go[i];
  });
  return out;
}

Tensor upsample_nearest2x(const Tensor& x) {
  if (x.ndim() != 4)
    throw std::invalid_argument("upsample_nearest2x: need 4-D input");
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  Tensor out({N, C, 2 * H, 2 * W});
  const float* px = x.data();
  float* po = out.data();
  for (int nc = 0; nc < N * C; ++nc) {
    const float* sp = px + static_cast<std::int64_t>(nc) * H * W;
    float* dp = po + static_cast<std::int64_t>(nc) * 4 * H * W;
    for (int i = 0; i < H; ++i) {
      for (int j = 0; j < W; ++j) {
        const float v = sp[i * W + j];
        const std::int64_t b = static_cast<std::int64_t>(2 * i) * 2 * W + 2 * j;
        dp[b] = v;
        dp[b + 1] = v;
        dp[b + 2 * W] = v;
        dp[b + 2 * W + 1] = v;
      }
    }
  }
  Tensor::attach_backward(out, {x}, [x, out = out.impl().get(), N, C, H, W]() mutable {
    const float* go = out->grad.data();
    float* gx = x.grad();
    for (int nc = 0; nc < N * C; ++nc) {
      const float* gp = go + static_cast<std::int64_t>(nc) * 4 * H * W;
      float* sp = gx + static_cast<std::int64_t>(nc) * H * W;
      for (int i = 0; i < H; ++i)
        for (int j = 0; j < W; ++j) {
          const std::int64_t b = static_cast<std::int64_t>(2 * i) * 2 * W + 2 * j;
          sp[i * W + j] += gp[b] + gp[b + 1] + gp[b + 2 * W] + gp[b + 2 * W + 1];
        }
    }
  });
  return out;
}

Tensor group_norm(const Tensor& x, int groups, const Tensor& gamma,
                  const Tensor& beta, float eps) {
  if (x.ndim() != 4) throw std::invalid_argument("group_norm: need 4-D input");
  const int N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  if (groups <= 0 || C % groups != 0)
    throw std::invalid_argument("group_norm: C must be divisible by groups");
  if (gamma.ndim() != 1 || gamma.dim(0) != C || beta.ndim() != 1 ||
      beta.dim(0) != C)
    throw std::invalid_argument("group_norm: gamma/beta must be (C)");
  const int cpg = C / groups;
  const std::int64_t gsize = static_cast<std::int64_t>(cpg) * H * W;
  Tensor out(x.shape());
  auto mean_v = std::make_shared<std::vector<double>>(
      static_cast<std::size_t>(N) * groups);
  auto istd_v = std::make_shared<std::vector<double>>(
      static_cast<std::size_t>(N) * groups);
  const float* px = x.data();
  float* po = out.data();
  for (int n = 0; n < N; ++n) {
    for (int g = 0; g < groups; ++g) {
      const float* base = px + (static_cast<std::int64_t>(n) * C + g * cpg) * H * W;
      double m = 0.0;
      for (std::int64_t i = 0; i < gsize; ++i) m += static_cast<double>(base[i]);
      m /= static_cast<double>(gsize);
      double v = 0.0;
      for (std::int64_t i = 0; i < gsize; ++i) {
        const double d = static_cast<double>(base[i]) - m;
        v += d * d;
      }
      v /= static_cast<double>(gsize);
      const double istd = 1.0 / std::sqrt(v + static_cast<double>(eps));
      (*mean_v)[static_cast<std::size_t>(n * groups + g)] = m;
      (*istd_v)[static_cast<std::size_t>(n * groups + g)] = istd;
      float* ob = po + (static_cast<std::int64_t>(n) * C + g * cpg) * H * W;
      for (int c = 0; c < cpg; ++c) {
        const float gm = gamma.data()[g * cpg + c];
        const float bt = beta.data()[g * cpg + c];
        const float* sb = base + static_cast<std::int64_t>(c) * H * W;
        float* db = ob + static_cast<std::int64_t>(c) * H * W;
        for (int i = 0; i < H * W; ++i)
          db[i] =
              static_cast<float>((static_cast<double>(sb[i]) - m) * istd) * gm +
              bt;
      }
    }
  }
  Tensor::attach_backward(
      out, {x, gamma, beta},
      [x, gamma, beta, out = out.impl().get(), N, C, H, W, groups, cpg, gsize, mean_v,
       istd_v]() mutable {
        const float* go = out->grad.data();
        const float* pxg = x.data();
        for (int n = 0; n < N; ++n) {
          for (int g = 0; g < groups; ++g) {
            const double m = (*mean_v)[static_cast<std::size_t>(n * groups + g)];
            const double istd = (*istd_v)[static_cast<std::size_t>(n * groups + g)];
            const float* xb =
                pxg + (static_cast<std::int64_t>(n) * C + g * cpg) * H * W;
            const float* gb =
                go + (static_cast<std::int64_t>(n) * C + g * cpg) * H * W;
            // dgamma/dbeta, plus the two group-wide sums needed for dx.
            double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
            for (int c = 0; c < cpg; ++c) {
              const double gm = gamma.data()[g * cpg + c];
              const float* xc = xb + static_cast<std::int64_t>(c) * H * W;
              const float* gc = gb + static_cast<std::int64_t>(c) * H * W;
              double dg = 0.0, db = 0.0;
              for (int i = 0; i < H * W; ++i) {
                const double xhat = (static_cast<double>(xc[i]) - m) * istd;
                const double dxhat = static_cast<double>(gc[i]) * gm;
                sum_dxhat += dxhat;
                sum_dxhat_xhat += dxhat * xhat;
                dg += static_cast<double>(gc[i]) * xhat;
                db += static_cast<double>(gc[i]);
              }
              if (gamma.requires_grad())
                gamma.grad()[g * cpg + c] += static_cast<float>(dg);
              if (beta.requires_grad())
                beta.grad()[g * cpg + c] += static_cast<float>(db);
            }
            if (x.requires_grad()) {
              float* gx = x.grad() +
                          (static_cast<std::int64_t>(n) * C + g * cpg) * H * W;
              const double inv_n = 1.0 / static_cast<double>(gsize);
              for (int c = 0; c < cpg; ++c) {
                const double gm = gamma.data()[g * cpg + c];
                const float* xc = xb + static_cast<std::int64_t>(c) * H * W;
                const float* gc = gb + static_cast<std::int64_t>(c) * H * W;
                float* gxc = gx + static_cast<std::int64_t>(c) * H * W;
                for (int i = 0; i < H * W; ++i) {
                  const double xhat = (static_cast<double>(xc[i]) - m) * istd;
                  const double dxhat = static_cast<double>(gc[i]) * gm;
                  gxc[i] += static_cast<float>(
                      istd * (dxhat - inv_n * sum_dxhat -
                              xhat * inv_n * sum_dxhat_xhat));
                }
              }
            }
          }
        }
      });
  return out;
}

}  // namespace neurfill::nn
