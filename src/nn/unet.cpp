#include "nn/unet.hpp"

#include <stdexcept>

namespace neurfill::nn {

UNet::UNet(const UNetConfig& config, Rng& rng) : config_(config) {
  if (config.depth < 1 || config.base_channels < 1)
    throw std::invalid_argument("UNet: bad config");
  int ch = config.base_channels;
  int in = config.in_channels;
  for (int d = 0; d < config.depth; ++d) {
    enc_.push_back(std::make_shared<DoubleConv>(in, ch, rng, config.use_group_norm));
    register_module("enc" + std::to_string(d), enc_.back());
    in = ch;
    ch *= 2;
  }
  bottleneck_ = std::make_shared<DoubleConv>(in, ch, rng, config.use_group_norm);
  register_module("bottleneck", bottleneck_);
  // Decoder: from the bottleneck back up.  Stage d consumes `ch` channels,
  // upsamples and reduces to ch/2, concatenates the skip (ch/2) and fuses.
  for (int d = config.depth - 1; d >= 0; --d) {
    const int skip_ch = config.base_channels << d;
    up_.push_back(std::make_shared<Conv2d>(2 * skip_ch, skip_ch, 3, 1, 1, rng));
    register_module("up" + std::to_string(d), up_.back());
    dec_.push_back(std::make_shared<DoubleConv>(2 * skip_ch, skip_ch, rng,
                                               config.use_group_norm));
    register_module("dec" + std::to_string(d), dec_.back());
  }
  head_ = std::make_shared<Conv2d>(config.base_channels, config.out_channels,
                                   1, 1, 0, rng);
  register_module("head", head_);
  // Damp the output head so the untrained network starts near zero (the
  // normalized regression target's mean); removes the large initial loss
  // transient that otherwise dominates the first epochs.
  for (auto& [name, t] : head_->named_parameters())
    for (std::int64_t i = 0; i < t.numel(); ++i) t.data()[i] *= 0.1f;
}

Tensor UNet::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != config_.in_channels)
    throw std::invalid_argument("UNet::forward: bad input shape");
  const int div = 1 << config_.depth;
  if (x.dim(2) % div != 0 || x.dim(3) % div != 0)
    throw std::invalid_argument(
        "UNet::forward: H and W must be divisible by 2^depth");

  std::vector<Tensor> skips;
  Tensor h = x;
  for (auto& enc : enc_) {
    h = enc->forward(h);
    skips.push_back(h);
    h = maxpool2x2(h);
  }
  h = bottleneck_->forward(h);
  for (std::size_t i = 0; i < dec_.size(); ++i) {
    h = up_[i]->forward(upsample_nearest2x(h));
    const Tensor& skip = skips[skips.size() - 1 - i];
    h = dec_[i]->forward(concat_channels(skip, h));
  }
  return head_->forward(h);
}

}  // namespace neurfill::nn
