#include "nn/gemm.hpp"

#include <cstring>

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace neurfill::nn {

namespace {
/// Shared precondition for every kernel: non-negative dimensions and, when
/// the product is non-empty, live buffers to stream through.
void check_gemm_args(const char* name, int M, int N, int K, const float* A,
                     const float* B, const float* C) {
  NF_CHECK(M >= 0 && N >= 0 && K >= 0, "%s: negative dimension M=%d N=%d K=%d",
           name, M, N, K);
  if (M > 0 && N > 0) {
    NF_CHECK(C != nullptr, "%s: null C with M=%d N=%d", name, M, N);
    if (K > 0)
      NF_CHECK(A != nullptr && B != nullptr, "%s: null input operand", name);
  }
}

/// Rows of C per parallel block, sized so one block is >= ~64k flop.  A
/// function of the problem shape only (never the thread count), so the
/// M-blocking — and with it every result bit — is identical at any thread
/// count; each block writes a disjoint row range of C.
std::size_t row_grain(int N, int K) {
  const std::size_t flop_per_row =
      2u * static_cast<std::size_t>(N > 0 ? N : 1) *
      static_cast<std::size_t>(K > 0 ? K : 1);
  const std::size_t g = 65536 / (flop_per_row + 1);
  return g < 1 ? 1 : g;
}

/// Multiply-add count of one product, for the nn.gemm_flops counter.
/// Unused when the tracing macros are compiled out.
[[maybe_unused]] std::int64_t gemm_flops(int M, int N, int K) {
  return std::int64_t{2} * M * N * K;
}
}  // namespace

void gemm_nn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate) {
  check_gemm_args("gemm_nn", M, N, K, A, B, C);
  NF_TRACE_SPAN("nn.gemm");
  NF_COUNTER_ADD("nn.gemm_flops", gemm_flops(M, N, K));
  runtime::parallel_for(
      row_grain(N, K), static_cast<std::size_t>(M),
      [=](std::size_t i0, std::size_t i1) {
        if (!accumulate)
          std::memset(C + i0 * static_cast<std::size_t>(N), 0,
                      sizeof(float) * (i1 - i0) * static_cast<std::size_t>(N));
        for (std::size_t i = i0; i < i1; ++i) {
          const float* a_row = A + i * static_cast<std::size_t>(K);
          float* c_row = C + i * static_cast<std::size_t>(N);
          for (int k = 0; k < K; ++k) {
            const float a = a_row[k];
            if (a == 0.0f) continue;
            const float* b_row = B + static_cast<std::size_t>(k) * N;
            for (int j = 0; j < N; ++j) c_row[j] += a * b_row[j];
          }
        }
      });
}

void gemm_nt(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate) {
  check_gemm_args("gemm_nt", M, N, K, A, B, C);
  NF_TRACE_SPAN("nn.gemm");
  NF_COUNTER_ADD("nn.gemm_flops", gemm_flops(M, N, K));
  runtime::parallel_for(
      row_grain(N, K), static_cast<std::size_t>(M),
      [=](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* a_row = A + i * static_cast<std::size_t>(K);
          float* c_row = C + i * static_cast<std::size_t>(N);
          for (int j = 0; j < N; ++j) {
            const float* b_row = B + static_cast<std::size_t>(j) * K;
            float acc = accumulate ? c_row[j] : 0.0f;
            for (int k = 0; k < K; ++k) acc += a_row[k] * b_row[k];
            c_row[j] = acc;
          }
        }
      });
}

void gemm_tn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate) {
  check_gemm_args("gemm_tn", M, N, K, A, B, C);
  NF_TRACE_SPAN("nn.gemm");
  NF_COUNTER_ADD("nn.gemm_flops", gemm_flops(M, N, K));
  // Parallel over rows of C (disjoint writes).  Per element the k-loop runs
  // in the same ascending order as the historical k-outer kernel, so the
  // floating-point result is unchanged; A is now read with stride M, which
  // is the price of race-free row ownership.
  runtime::parallel_for(
      row_grain(N, K), static_cast<std::size_t>(M),
      [=](std::size_t i0, std::size_t i1) {
        if (!accumulate)
          std::memset(C + i0 * static_cast<std::size_t>(N), 0,
                      sizeof(float) * (i1 - i0) * static_cast<std::size_t>(N));
        for (std::size_t i = i0; i < i1; ++i) {
          float* c_row = C + i * static_cast<std::size_t>(N);
          for (int k = 0; k < K; ++k) {
            const float a = A[static_cast<std::size_t>(k) * M + i];
            if (a == 0.0f) continue;
            const float* b_row = B + static_cast<std::size_t>(k) * N;
            for (int j = 0; j < N; ++j) c_row[j] += a * b_row[j];
          }
        }
      });
}

}  // namespace neurfill::nn
