#include "nn/gemm.hpp"

#include <cstring>

#include "common/check.hpp"

namespace neurfill::nn {

namespace {
/// Shared precondition for every kernel: non-negative dimensions and, when
/// the product is non-empty, live buffers to stream through.
void check_gemm_args(const char* name, int M, int N, int K, const float* A,
                     const float* B, const float* C) {
  NF_CHECK(M >= 0 && N >= 0 && K >= 0, "%s: negative dimension M=%d N=%d K=%d",
           name, M, N, K);
  if (M > 0 && N > 0) {
    NF_CHECK(C != nullptr, "%s: null C with M=%d N=%d", name, M, N);
    if (K > 0)
      NF_CHECK(A != nullptr && B != nullptr, "%s: null input operand", name);
  }
}
}  // namespace

void gemm_nn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate) {
  check_gemm_args("gemm_nn", M, N, K, A, B, C);
  if (!accumulate) std::memset(C, 0, sizeof(float) * static_cast<std::size_t>(M) * N);
  for (int i = 0; i < M; ++i) {
    const float* a_row = A + static_cast<std::size_t>(i) * K;
    float* c_row = C + static_cast<std::size_t>(i) * N;
    for (int k = 0; k < K; ++k) {
      const float a = a_row[k];
      if (a == 0.0f) continue;
      const float* b_row = B + static_cast<std::size_t>(k) * N;
      for (int j = 0; j < N; ++j) c_row[j] += a * b_row[j];
    }
  }
}

void gemm_nt(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate) {
  check_gemm_args("gemm_nt", M, N, K, A, B, C);
  for (int i = 0; i < M; ++i) {
    const float* a_row = A + static_cast<std::size_t>(i) * K;
    float* c_row = C + static_cast<std::size_t>(i) * N;
    for (int j = 0; j < N; ++j) {
      const float* b_row = B + static_cast<std::size_t>(j) * K;
      float acc = accumulate ? c_row[j] : 0.0f;
      for (int k = 0; k < K; ++k) acc += a_row[k] * b_row[k];
      c_row[j] = acc;
    }
  }
}

void gemm_tn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate) {
  check_gemm_args("gemm_tn", M, N, K, A, B, C);
  if (!accumulate) std::memset(C, 0, sizeof(float) * static_cast<std::size_t>(M) * N);
  for (int k = 0; k < K; ++k) {
    const float* a_row = A + static_cast<std::size_t>(k) * M;
    const float* b_row = B + static_cast<std::size_t>(k) * N;
    for (int i = 0; i < M; ++i) {
      const float a = a_row[i];
      if (a == 0.0f) continue;
      float* c_row = C + static_cast<std::size_t>(i) * N;
      for (int j = 0; j < N; ++j) c_row[j] += a * b_row[j];
    }
  }
}

}  // namespace neurfill::nn
