#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "nn/backend/backend.hpp"
#include "nn/tensor.hpp"
#include "nn/unet.hpp"

// Tape-free inference engine (docs/inference.md).  An InferenceSession
// compiles a UNet into a static, topologically ordered op graph once —
// fused conv+groupnorm+activation blocks, pool/upsample/concat nodes, and
// a liveness-planned arena of reused activation buffers — then executes
// forward passes with zero steady-state allocation.  Results are bitwise
// identical to the autograd module evaluation at any thread count (pinned
// by tests/test_inference.cpp), because every kernel reproduces the same
// accumulation orders through the same compute backend.
//
// This directory is lint-enforced tape-free: nf_lint's infer-no-autograd
// rule forbids the tape API surface here, so the engine can never silently
// regress into building autograd state.

namespace neurfill::nn {

struct InferenceOptions {
  /// Reuse activation buffers once their last consumer has executed
  /// (liveness-planned arena).  Off gives every value a private block —
  /// the aliasing-free reference the arena planner is tested against.
  bool reuse_buffers = true;
  /// Execute conv blocks through the fused conv+groupnorm+activation
  /// kernel.  Off runs the unfused backend kernel chain in place — the
  /// fusion-free reference path.
  bool fuse = true;
  /// Pre-pack constant conv weight panels at compile time through the
  /// backend (Backend::conv_weight_pack), hoisting the GEMM's per-call A
  /// packing out of every forward.  Results are bitwise identical either
  /// way; off keeps the pack-per-call reference path.
  bool prepack_weights = true;
  /// Plan the per-thread arena for at least this batch size on the first
  /// run(), so a session that alternates batch sizes up to `max_batch`
  /// reaches zero steady-state allocation immediately instead of growing
  /// on the first large batch.  Larger run() batches still work (the arena
  /// grows once).  Clamped to >= 1.
  int max_batch = 1;
};

class InferenceSession {
 public:
  /// Compiles `net` for inputs of spatial extent height x width (each must
  /// be positive and divisible by 2^depth).  Parameter storage is shared
  /// with (and kept alive independently of) `net`.  Weights are treated as
  /// constant from compile time on: layers with a backend packed form are
  /// snapshotted into pre-packed panels here (InferenceOptions::
  /// prepack_weights), so mutating parameters after construction is
  /// unsupported — rebuild the session after weight updates.
  InferenceSession(const UNet& net, int height, int width,
                   InferenceOptions options = {});

  /// One batched NCHW pass: `input` is [batch, in_channels, H, W],
  /// `output` is [batch, out_channels, H, W], both caller-owned and
  /// non-overlapping.  Thread-safe (per-thread arena) and deterministic:
  /// the result is bitwise identical at any thread count, and a batch-B
  /// call equals B batch-1 calls sample for sample.  Steady state performs
  /// no allocation: the arena is a grow-only thread_local buffer.
  void run(const float* input, float* output, int batch = 1) const;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int height() const { return height_; }
  int width() const { return width_; }
  /// Arena footprint per batch sample, in floats (introspection/tests).
  std::size_t arena_floats_per_sample() const { return arena_floats_; }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct ValueSpec {
    int channels = 0;
    int height = 0;
    int width = 0;
    bool external = false;    ///< the session input, not arena-backed
    std::size_t offset = 0;   ///< per-sample float offset into the arena
  };

  struct ConvBlockSpec {
    Conv2dGeom geom;            ///< batch filled in at run time
    const float* weight = nullptr;
    const float* bias = nullptr;
    const float* gamma = nullptr;
    const float* beta = nullptr;
    int groups = 0;             ///< 0: no normalization
    float eps = 0.0f;
    ActKind act = ActKind::kNone;
    float slope = 0.0f;
    /// Offset of this block's pre-packed weight panel in packed_weights_,
    /// or -1 when the layer has no packed form (or prepacking is off).
    std::ptrdiff_t packed_offset = -1;
  };

  struct Node {
    enum class Kind { kConvBlock, kMaxPool, kUpsample, kConcat };
    Kind kind = Kind::kConvBlock;
    int in0 = -1;
    int in1 = -1;  ///< kConcat only (second operand)
    int out = -1;
    ConvBlockSpec conv;  ///< kConvBlock only
  };

  int add_value(int channels, int height, int width);
  int add_conv_block(const void* conv_module, const void* norm_module,
                     ActKind act, int in_id);
  void plan_arena(bool reuse);
  void prepack_weights();
  float* value_ptr(int vid, float* arena, int batch) const;

  std::vector<ValueSpec> values_;
  std::vector<Node> nodes_;
  std::vector<Tensor> keep_;  ///< shares ownership of the parameter storage
  /// Compile-time weight panels (Backend::conv_weight_pack), one region per
  /// conv block with a packed form; valid only on the backend that was
  /// active at compile time (run() passes them only through that backend's
  /// packed entry point, which ignores panels it did not produce).
  AlignedBuffer<float> packed_weights_;
  Backend* pack_backend_ = nullptr;  ///< backend the panels were packed on
  std::size_t arena_floats_ = 0;
  int out_value_ = -1;
  int in_channels_ = 0;
  int out_channels_ = 0;
  int height_ = 0;
  int width_ = 0;
  bool fuse_ = true;
  int max_batch_ = 1;
};

}  // namespace neurfill::nn
