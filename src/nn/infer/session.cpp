#include "nn/infer/session.hpp"

#include <cstring>
#include <map>
#include <string>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "nn/module.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Graph compilation + execution for the tape-free inference fast path.
// The compiler mirrors the module evaluation order of UNet exactly (encoder
// blocks with skips and 2x2 pools, bottleneck, upsample+conv / concat /
// double-conv decoder stages, 1x1 head) so the planned graph computes the
// same floats through the same backend kernels — bitwise, not just within
// tolerance.  See docs/inference.md for the arena-planning and fusion
// rules; tests/test_inference.cpp pins the equivalences.
//
// NOTE: this translation unit must stay free of the autograd tape API —
// nf_lint's infer-no-autograd rule enforces it.

namespace neurfill::nn {

namespace {

/// Per-sample float footprint of a value, rounded up to 16 floats so every
/// arena offset stays 64-byte aligned (offsets scale by the batch size at
/// run time, which preserves the alignment).
std::size_t aligned_floats(int channels, int height, int width) {
  const std::size_t raw = static_cast<std::size_t>(channels) *
                          static_cast<std::size_t>(height) *
                          static_cast<std::size_t>(width);
  return (raw + 15u) & ~static_cast<std::size_t>(15u);
}

}  // namespace

int InferenceSession::add_value(int channels, int height, int width) {
  NF_CHECK(channels > 0 && height > 0 && width > 0,
           "InferenceSession: bad value shape %dx%dx%d", channels, height,
           width);
  ValueSpec v;
  v.channels = channels;
  v.height = height;
  v.width = width;
  values_.push_back(v);
  return static_cast<int>(values_.size()) - 1;
}

int InferenceSession::add_conv_block(const void* conv_module,
                                     const void* norm_module, ActKind act,
                                     int in_id) {
  const auto* conv = static_cast<const Conv2d*>(conv_module);
  const auto* norm = static_cast<const GroupNorm*>(norm_module);
  const ValueSpec& in = values_[in_id];

  const Tensor& w = conv->weight();
  NF_CHECK(w.ndim() == 4, "InferenceSession: conv weight must be 4-D");
  NF_CHECK(w.dim(1) == in.channels,
           "InferenceSession: conv expects %d input channels, value has %d",
           w.dim(1), in.channels);

  Conv2dGeom g;
  g.batch = 1;  // patched to the actual batch at run time
  g.in_channels = in.channels;
  g.height = in.height;
  g.width = in.width;
  g.out_channels = w.dim(0);
  g.kernel_h = w.dim(2);
  g.kernel_w = w.dim(3);
  g.stride = conv->stride();
  g.padding = conv->padding();
  g.out_height = (in.height + 2 * g.padding - g.kernel_h) / g.stride + 1;
  g.out_width = (in.width + 2 * g.padding - g.kernel_w) / g.stride + 1;
  NF_CHECK(g.out_height > 0 && g.out_width > 0,
           "InferenceSession: conv output collapsed to %dx%d", g.out_height,
           g.out_width);

  Node node;
  node.kind = Node::Kind::kConvBlock;
  node.in0 = in_id;
  node.out = add_value(g.out_channels, g.out_height, g.out_width);
  node.conv.geom = g;
  node.conv.weight = w.data();
  node.conv.act = act;
  node.conv.slope = 0.0f;
  keep_.push_back(w);
  if (conv->bias().defined()) {
    node.conv.bias = conv->bias().data();
    keep_.push_back(conv->bias());
  }
  if (norm != nullptr) {
    NF_CHECK(norm->groups() > 0 && g.out_channels % norm->groups() == 0,
             "InferenceSession: %d channels not divisible into %d groups",
             g.out_channels, norm->groups());
    node.conv.groups = norm->groups();
    node.conv.eps = 1e-5f;  // GroupNorm's module eps (ops.hpp default)
    node.conv.gamma = norm->gamma().data();
    node.conv.beta = norm->beta().data();
    keep_.push_back(norm->gamma());
    keep_.push_back(norm->beta());
  }
  nodes_.push_back(node);
  return node.out;
}

InferenceSession::InferenceSession(const UNet& net, int height, int width,
                                   InferenceOptions options)
    : fuse_(options.fuse),
      max_batch_(options.max_batch > 1 ? options.max_batch : 1) {
  const UNetConfig& cfg = net.config();
  NF_CHECK(height > 0 && width > 0, "InferenceSession: bad extent %dx%d",
           height, width);
  const int div = 1 << cfg.depth;
  NF_CHECK(height % div == 0 && width % div == 0,
           "InferenceSession: %dx%d not divisible by 2^depth = %d", height,
           width, div);
  in_channels_ = cfg.in_channels;
  out_channels_ = cfg.out_channels;
  height_ = height;
  width_ = width;

  // Index the module tree by dotted path.  (std::map keeps iteration — and
  // any failure messages — deterministic.)
  std::map<std::string, const Module*> index;
  for (const auto& entry : net.named_modules())
    index.emplace(entry.first, entry.second);
  auto conv_at = [&index](const std::string& name) -> const Conv2d* {
    auto it = index.find(name);
    NF_CHECK(it != index.end(), "InferenceSession: missing module %s",
             name.c_str());
    const auto* conv = dynamic_cast<const Conv2d*>(it->second);
    NF_CHECK(conv != nullptr, "InferenceSession: %s is not a Conv2d",
             name.c_str());
    return conv;
  };
  auto gn_at = [&index](const std::string& name) -> const GroupNorm* {
    auto it = index.find(name);
    if (it == index.end()) return nullptr;  // norm disabled in this net
    const auto* norm = dynamic_cast<const GroupNorm*>(it->second);
    NF_CHECK(norm != nullptr, "InferenceSession: %s is not a GroupNorm",
             name.c_str());
    return norm;
  };
  // DoubleConv evaluates conv1 -> [norm1] -> relu -> conv2 -> [norm2] ->
  // relu; each half is one fused block.
  auto double_conv = [&](const std::string& prefix, int v) {
    v = add_conv_block(conv_at(prefix + ".conv1"), gn_at(prefix + ".norm1"),
                       ActKind::kRelu, v);
    return add_conv_block(conv_at(prefix + ".conv2"), gn_at(prefix + ".norm2"),
                          ActKind::kRelu, v);
  };

  int v = add_value(cfg.in_channels, height, width);
  values_[v].external = true;

  std::vector<int> skips;
  for (int d = 0; d < cfg.depth; ++d) {
    v = double_conv("enc" + std::to_string(d), v);
    skips.push_back(v);
    const ValueSpec spec = values_[v];
    Node pool;
    pool.kind = Node::Kind::kMaxPool;
    pool.in0 = v;
    pool.out = add_value(spec.channels, spec.height / 2, spec.width / 2);
    nodes_.push_back(pool);
    v = pool.out;
  }
  v = double_conv("bottleneck", v);
  for (int d = cfg.depth - 1; d >= 0; --d) {
    const ValueSpec spec = values_[v];
    Node up;
    up.kind = Node::Kind::kUpsample;
    up.in0 = v;
    up.out = add_value(spec.channels, spec.height * 2, spec.width * 2);
    nodes_.push_back(up);
    // Post-upsample 3x3 conv halves the channels; no norm, no activation.
    v = add_conv_block(conv_at("up" + std::to_string(d)), nullptr,
                       ActKind::kNone, up.out);
    // concat(skip, v) — skip first, matching the module evaluation.
    const ValueSpec& a = values_[skips[d]];
    const ValueSpec& b = values_[v];
    NF_CHECK(a.height == b.height && a.width == b.width,
             "InferenceSession: concat extent mismatch at stage %d", d);
    Node cat;
    cat.kind = Node::Kind::kConcat;
    cat.in0 = skips[d];
    cat.in1 = v;
    cat.out = add_value(a.channels + b.channels, a.height, a.width);
    nodes_.push_back(cat);
    v = double_conv("dec" + std::to_string(d), cat.out);
  }
  v = add_conv_block(conv_at("head"), nullptr, ActKind::kNone, v);
  out_value_ = v;
  NF_CHECK(values_[out_value_].channels == cfg.out_channels,
           "InferenceSession: head produced %d channels, expected %d",
           values_[out_value_].channels, cfg.out_channels);

  plan_arena(options.reuse_buffers);
  if (options.prepack_weights) prepack_weights();
}

void InferenceSession::prepack_weights() {
  // Snapshot every conv block with a backend packed form into one panel
  // buffer.  Runs once at compile time on the then-active backend; run()
  // only hands the panels to that backend's packed entry point, whose
  // contract makes them bitwise-neutral (same decomposition, same bytes the
  // in-loop packer would have produced).
  Backend& be = backend();
  std::size_t total = 0;
  std::vector<std::size_t> sizes(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind != Node::Kind::kConvBlock) continue;
    sizes[i] = be.conv_weight_pack_floats(nodes_[i].conv.geom);
    total += sizes[i];
  }
  if (total == 0) return;
  pack_backend_ = &be;
  float* base = packed_weights_.ensure(total);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (sizes[i] == 0) continue;
    be.conv_weight_pack(nodes_[i].conv.geom, nodes_[i].conv.weight,
                        base + offset);
    nodes_[i].conv.packed_offset = static_cast<std::ptrdiff_t>(offset);
    offset += sizes[i];
  }
}

void InferenceSession::plan_arena(bool reuse) {
  // Liveness: a value is dead after its last consuming node; the session
  // output survives to the final copy-out.
  const std::size_t n_nodes = nodes_.size();
  std::vector<std::size_t> last_use(values_.size(), 0);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    last_use[nodes_[i].in0] = i;
    if (nodes_[i].in1 >= 0) last_use[nodes_[i].in1] = i;
  }
  last_use[out_value_] = n_nodes;

  struct Block {
    std::size_t offset;
    std::size_t size;
  };
  std::vector<Block> free_list;
  std::size_t top = 0;

  // Best fit over the free list: smallest adequate block, ties to the
  // lowest offset; the remainder is split off and stays free.  Blocks are
  // not coalesced — the graph is compiled once and the UNet's release
  // pattern (same sizes recur every stage) reuses split blocks exactly, so
  // coalescing would buy nothing for permanent planning cost.
  auto alloc = [&](std::size_t need) -> std::size_t {
    if (reuse) {
      std::size_t best = free_list.size();
      for (std::size_t i = 0; i < free_list.size(); ++i) {
        if (free_list[i].size < need) continue;
        if (best == free_list.size() ||
            free_list[i].size < free_list[best].size ||
            (free_list[i].size == free_list[best].size &&
             free_list[i].offset < free_list[best].offset)) {
          best = i;
        }
      }
      if (best != free_list.size()) {
        const std::size_t offset = free_list[best].offset;
        if (free_list[best].size > need) {
          free_list[best].offset += need;
          free_list[best].size -= need;
        } else {
          free_list.erase(free_list.begin() + static_cast<std::ptrdiff_t>(best));
        }
        return offset;
      }
    }
    const std::size_t offset = top;
    top += need;
    return offset;
  };

  for (std::size_t i = 0; i < n_nodes; ++i) {
    const Node& node = nodes_[i];
    ValueSpec& out = values_[node.out];
    // Allocate the output BEFORE releasing dying inputs: kernels never run
    // in place across a node, so the output block must not alias an input
    // even when that input dies at this node.
    out.offset =
        alloc(aligned_floats(out.channels, out.height, out.width));
    if (!reuse) continue;
    const int ins[2] = {node.in0, node.in1};
    for (int k = 0; k < 2; ++k) {
      const int vid = ins[k];
      if (vid < 0 || values_[vid].external) continue;
      if (k == 1 && node.in1 == node.in0) continue;  // consumed twice
      if (last_use[vid] == i) {
        const ValueSpec& spec = values_[vid];
        free_list.push_back(
            {spec.offset,
             aligned_floats(spec.channels, spec.height, spec.width)});
      }
    }
  }
  arena_floats_ = top;
}

float* InferenceSession::value_ptr(int vid, float* arena, int batch) const {
  return arena + values_[vid].offset * static_cast<std::size_t>(batch);
}

void InferenceSession::run(const float* input, float* output,
                           int batch) const {
  NF_CHECK(batch >= 1, "InferenceSession::run: batch must be >= 1, got %d",
           batch);
  NF_CHECK(input != nullptr && output != nullptr,
           "InferenceSession::run: null buffer");
  NF_TRACE_SPAN("nn.infer_run");
  NF_GAUGE_SET("infer.batch", batch);
  NF_COUNTER_ADD("infer.samples", batch);
  if (batch > 1) NF_COUNTER_ADD("infer.batched_runs", 1);

  // Grow-only per-thread arena: zero allocation in steady state, and
  // concurrent run() calls from different threads never share activations.
  // The arena is sized for max(batch, max_batch_) so a session planned for
  // a batch ceiling never reallocates when the batch varies below it; the
  // high-water tracker feeds the gauge and the grow-event counter that the
  // zero-steady-state-allocation test pins.
  static thread_local AlignedBuffer<float> tls_arena;
  static thread_local std::size_t tls_arena_high_water = 0;
  const int plan_batch = batch > max_batch_ ? batch : max_batch_;
  const std::size_t need =
      arena_floats_ * static_cast<std::size_t>(plan_batch);
  if (need > tls_arena_high_water) {
    tls_arena_high_water = need;
    NF_COUNTER_ADD("infer.arena_grow_events", 1);
    NF_GAUGE_SET("infer.arena_high_water_bytes",
                 static_cast<double>(need * sizeof(float)));
  }
  float* arena = tls_arena.ensure(need);

  Backend& be = backend();
  // Panels belong to the backend that packed them; after a backend swap the
  // session silently falls back to the pack-per-call path (same results).
  const float* packs =
      (&be == pack_backend_) ? packed_weights_.data() : nullptr;
  for (const Node& node : nodes_) {
    const ValueSpec& in_spec = values_[node.in0];
    const float* in0 = in_spec.external
                           ? input
                           : value_ptr(node.in0, arena, batch);
    float* out = value_ptr(node.out, arena, batch);
    switch (node.kind) {
      case Node::Kind::kConvBlock: {
        Conv2dGeom g = node.conv.geom;
        g.batch = batch;
        if (fuse_) {
          const float* pw = (packs != nullptr && node.conv.packed_offset >= 0)
                                ? packs + node.conv.packed_offset
                                : nullptr;
          be.conv2d_gn_act_fwd_packed(g, node.conv.groups, node.conv.eps,
                                      node.conv.act, node.conv.slope, in0,
                                      node.conv.weight, pw, node.conv.bias,
                                      node.conv.gamma, node.conv.beta, out);
        } else {
          be.conv2d_fwd(g, in0, node.conv.weight, node.conv.bias, out);
          const std::int64_t numel = static_cast<std::int64_t>(batch) *
                                     g.out_channels * g.out_height *
                                     g.out_width;
          if (node.conv.groups > 0) {
            GroupNormGeom ng;
            ng.batch = batch;
            ng.channels = g.out_channels;
            ng.height = g.out_height;
            ng.width = g.out_width;
            ng.groups = node.conv.groups;
            ng.eps = node.conv.eps;
            be.group_norm_fwd(ng, out, node.conv.gamma, node.conv.beta, out,
                              nullptr, nullptr);
          }
          if (node.conv.act == ActKind::kRelu) {
            be.unary_map(UnaryKind::kRelu, 0.0f, out, out, numel);
          } else if (node.conv.act == ActKind::kLeakyRelu) {
            be.unary_map(UnaryKind::kLeakyRelu, node.conv.slope, out, out,
                         numel);
          }
        }
        break;
      }
      case Node::Kind::kMaxPool:
        be.maxpool2x2_fwd(
            static_cast<std::int64_t>(batch) * in_spec.channels,
            in_spec.height, in_spec.width, in0, out, nullptr);
        break;
      case Node::Kind::kUpsample:
        be.upsample2x_fwd(static_cast<std::int64_t>(batch) * in_spec.channels,
                          in_spec.height, in_spec.width, in0, out);
        break;
      case Node::Kind::kConcat: {
        const ValueSpec& b_spec = values_[node.in1];
        const float* in1 = b_spec.external
                               ? input
                               : value_ptr(node.in1, arena, batch);
        be.concat_channels_fwd(
            batch, in_spec.channels, b_spec.channels,
            static_cast<std::int64_t>(in_spec.height) * in_spec.width, in0,
            in1, out);
        break;
      }
    }
  }

  const ValueSpec& out_spec = values_[out_value_];
  const std::size_t out_floats = static_cast<std::size_t>(batch) *
                                 static_cast<std::size_t>(out_spec.channels) *
                                 out_spec.height * out_spec.width;
  std::memcpy(output, value_ptr(out_value_, arena, batch),
              out_floats * sizeof(float));
}

}  // namespace neurfill::nn
