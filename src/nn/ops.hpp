#pragma once

#include "nn/tensor.hpp"

namespace neurfill::nn {

// Autograd tensor ops.  These are the TRAINING-PATH entry points: every op
// allocates its output tensor, records a tape closure, and dispatches its
// arithmetic through the active compute backend (nn/backend/backend.hpp).
// Inference-only callers should not build networks out of these —
// nn/infer/session.hpp compiles the same arithmetic into a static graph
// with fused kernels and a planned arena, and is the supported fast path
// (docs/inference.md).  Direct kernel entry points (nn/gemm.hpp) are
// implementation-internal to the CPU backend.

/// Elementwise binary ops with numpy-style broadcasting (dims aligned from
/// the right; each pair must match or one must be 1).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

/// Tensor-scalar ops.
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

/// Elementwise unary ops.
Tensor neg(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, float slope = 0.01f);
Tensor sigmoid(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor exp_op(const Tensor& a);
Tensor log_op(const Tensor& a);
Tensor abs_op(const Tensor& a);  ///< |x|; subgradient 0 at x == 0
Tensor sqrt_op(const Tensor& a);
Tensor square(const Tensor& a);
/// Smooth max(0, x) with sharpness eta: softplus(eta*x)/eta.
Tensor softplus(const Tensor& a, float eta = 1.0f);

/// Reductions.
Tensor sum(const Tensor& a);   ///< scalar
Tensor mean(const Tensor& a);  ///< scalar
/// Reduce one axis, keeping it with extent 1 (so results broadcast back).
Tensor sum_axis(const Tensor& a, int axis);
Tensor mean_axis(const Tensor& a, int axis);
/// Population variance over all elements (scalar).
Tensor variance(const Tensor& a);

/// Shape ops.  `reshape` copies (identity backward); numel must match.
Tensor reshape(const Tensor& a, std::vector<int> shape);
/// Concatenate two 4-D tensors along the channel axis (dim 1).
Tensor concat_channels(const Tensor& a, const Tensor& b);

/// Linear algebra: (M,K) x (K,N) -> (M,N).
Tensor matmul(const Tensor& a, const Tensor& b);
/// Fully-connected: x (N,K) * w^T (K,O) + b (O).
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b);

/// 2-D convolution on NCHW tensors.  weight is (O, C, kh, kw); bias (O) or
/// undefined.  Symmetric zero padding.
Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
              int stride = 1, int padding = 0);

/// 2x2 max pooling with stride 2 (H and W must be even).
Tensor maxpool2x2(const Tensor& x);
/// Nearest-neighbour 2x upsampling (the UNet decoder uses upsample+conv).
Tensor upsample_nearest2x(const Tensor& x);

/// Group normalization over NCHW: channels split into `groups`; gamma/beta
/// have shape (C).
Tensor group_norm(const Tensor& x, int groups, const Tensor& gamma,
                  const Tensor& beta, float eps = 1e-5f);

/// Losses.
Tensor mse_loss(const Tensor& pred, const Tensor& target);  ///< mean (p-t)^2
Tensor l1_loss(const Tensor& pred, const Tensor& target);   ///< mean |p-t|

}  // namespace neurfill::nn
