#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "nn/backend/backend.hpp"
#include "nn/ops.hpp"
#include "runtime/parallel.hpp"

// Elementwise ops and reductions.  Forward arithmetic dispatches through
// the active compute backend (nn/backend/backend.hpp); this layer keeps the
// shape/broadcast logic and the autograd gradient loops, whose per-element
// derivative formulas stay local lambdas.

namespace neurfill::nn {

namespace {

/// Grain for flat elementwise loops: ~2 ns per element (load, a few ALU
/// ops, store), converted by runtime::grain_for_cost into ~25 us blocks;
/// loops under ~50 us run inline as a single block instead of forking.
/// Depends only on n — never the thread count — so the block decomposition
/// (and therefore every parallel_reduce combine order) is identical at any
/// thread count.
inline std::size_t elem_grain(std::int64_t n) {
  return runtime::grain_for_cost(2.0, static_cast<std::size_t>(n));
}

/// Shapes padded to 4 dims with leading 1s, plus flat strides where
/// broadcast dimensions get stride 0.
struct BroadcastPlan {
  std::array<int, 4> out{1, 1, 1, 1};
  std::array<std::int64_t, 4> astr{0, 0, 0, 0};
  std::array<std::int64_t, 4> bstr{0, 0, 0, 0};
  std::vector<int> out_shape;
};

std::array<int, 4> pad4(const std::vector<int>& s) {
  std::array<int, 4> r{1, 1, 1, 1};
  const std::size_t off = 4 - s.size();
  for (std::size_t i = 0; i < s.size(); ++i) r[off + i] = s[i];
  return r;
}

std::array<std::int64_t, 4> strides4(const std::array<int, 4>& s) {
  std::array<std::int64_t, 4> st{};
  st[3] = 1;
  for (int i = 2; i >= 0; --i) st[static_cast<std::size_t>(i)] =
      st[static_cast<std::size_t>(i + 1)] * s[static_cast<std::size_t>(i + 1)];
  return st;
}

BroadcastPlan make_plan(const Tensor& a, const Tensor& b) {
  BroadcastPlan p;
  const auto as = pad4(a.shape());
  const auto bs = pad4(b.shape());
  for (int i = 0; i < 4; ++i) {
    const auto u = static_cast<std::size_t>(i);
    if (as[u] == bs[u]) {
      p.out[u] = as[u];
    } else if (as[u] == 1) {
      p.out[u] = bs[u];
    } else if (bs[u] == 1) {
      p.out[u] = as[u];
    } else {
      throw std::invalid_argument("broadcast: incompatible shapes " +
                                  shape_to_string(a.shape()) + " vs " +
                                  shape_to_string(b.shape()));
    }
  }
  const auto ast = strides4(as);
  const auto bst = strides4(bs);
  for (int i = 0; i < 4; ++i) {
    const auto u = static_cast<std::size_t>(i);
    p.astr[u] = (as[u] == 1 && p.out[u] != 1) ? 0 : ast[u];
    p.bstr[u] = (bs[u] == 1 && p.out[u] != 1) ? 0 : bst[u];
  }
  // Result rank: max of the input ranks.
  const int nd = std::max(a.ndim(), b.ndim());
  p.out_shape.assign(p.out.begin() + (4 - nd), p.out.end());
  if (p.out_shape.empty()) p.out_shape = {1};
  return p;
}

/// Generic broadcasting binary op.  `kind` selects the backend map for the
/// same-shape fast path; `f(x, y)` computes the value in the broadcast
/// fallback; `dfa` and `dfb` compute d out / d a and d out / d b at (x, y).
template <typename F, typename DFA, typename DFB>
Tensor binary_op(const Tensor& a, const Tensor& b, BinaryKind kind, F f,
                 DFA dfa, DFB dfb) {
  if (same_shape(a, b)) {  // fast path: flat loops, no index math
    Tensor out(a.shape());
    backend().binary_map(kind, a.data(), b.data(), out.data(), a.numel());
    Tensor::attach_backward(out, {a, b}, [a, b, out = out.impl().get(), dfa, dfb]() mutable {
      const float* ga_src = out->grad.data();
      const float* pa2 = a.data();
      const float* pb2 = b.data();
      const std::int64_t n2 = a.numel();
      // Per-index disjoint writes into each input's gradient, so both
      // accumulations parallelize over the flat range.
      if (a.requires_grad()) {
        float* ga = a.grad();
        runtime::parallel_for(elem_grain(n2), static_cast<std::size_t>(n2),
                              [=](std::size_t i0, std::size_t i1) {
                                for (std::size_t i = i0; i < i1; ++i)
                                  ga[i] += ga_src[i] * dfa(pa2[i], pb2[i]);
                              });
      }
      if (b.requires_grad()) {
        float* gb = b.grad();
        runtime::parallel_for(elem_grain(n2), static_cast<std::size_t>(n2),
                              [=](std::size_t i0, std::size_t i1) {
                                for (std::size_t i = i0; i < i1; ++i)
                                  gb[i] += ga_src[i] * dfb(pa2[i], pb2[i]);
                              });
      }
    });
    return out;
  }

  const BroadcastPlan plan = make_plan(a, b);
  Tensor out(plan.out_shape);
  {
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    std::int64_t o = 0;
    for (int i0 = 0; i0 < plan.out[0]; ++i0)
      for (int i1 = 0; i1 < plan.out[1]; ++i1)
        for (int i2 = 0; i2 < plan.out[2]; ++i2)
          for (int i3 = 0; i3 < plan.out[3]; ++i3) {
            const std::int64_t ia = i0 * plan.astr[0] + i1 * plan.astr[1] +
                                    i2 * plan.astr[2] + i3 * plan.astr[3];
            const std::int64_t ib = i0 * plan.bstr[0] + i1 * plan.bstr[1] +
                                    i2 * plan.bstr[2] + i3 * plan.bstr[3];
            po[o++] = f(pa[ia], pb[ib]);
          }
  }
  Tensor::attach_backward(out, {a, b}, [a, b, out = out.impl().get(), plan, dfa, dfb]() mutable {
    const float* go = out->grad.data();
    const float* pa = a.data();
    const float* pb = b.data();
    float* ga = a.requires_grad() ? a.grad() : nullptr;
    float* gb = b.requires_grad() ? b.grad() : nullptr;
    std::int64_t o = 0;
    for (int i0 = 0; i0 < plan.out[0]; ++i0)
      for (int i1 = 0; i1 < plan.out[1]; ++i1)
        for (int i2 = 0; i2 < plan.out[2]; ++i2)
          for (int i3 = 0; i3 < plan.out[3]; ++i3) {
            const std::int64_t ia = i0 * plan.astr[0] + i1 * plan.astr[1] +
                                    i2 * plan.astr[2] + i3 * plan.astr[3];
            const std::int64_t ib = i0 * plan.bstr[0] + i1 * plan.bstr[1] +
                                    i2 * plan.bstr[2] + i3 * plan.bstr[3];
            const float g = go[o++];
            if (ga) ga[ia] += g * dfa(pa[ia], pb[ib]);
            if (gb) gb[ib] += g * dfb(pa[ia], pb[ib]);
          }
  });
  return out;
}

/// Generic elementwise unary op; forward via the backend map (`p` is the
/// UnaryKind parameter), derivative expressed in terms of input x and
/// output y.
template <typename DF>
Tensor unary_op(const Tensor& a, UnaryKind kind, float p, DF df) {
  Tensor out(a.shape());
  backend().unary_map(kind, p, a.data(), out.data(), a.numel());
  Tensor::attach_backward(out, {a}, [a, out = out.impl().get(), df]() mutable {
    const float* go = out->grad.data();
    const float* pa2 = a.data();
    const float* po2 = out->data.data();
    float* ga = a.grad();
    const std::int64_t n2 = a.numel();
    runtime::parallel_for(elem_grain(n2), static_cast<std::size_t>(n2),
                          [=](std::size_t i0, std::size_t i1) {
                            for (std::size_t i = i0; i < i1; ++i)
                              ga[i] += go[i] * df(pa2[i], po2[i]);
                          });
  });
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, BinaryKind::kAdd, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, BinaryKind::kSub, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, BinaryKind::kMul, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(
      a, b, BinaryKind::kDiv, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, UnaryKind::kAddScalar, s,
                  [](float, float) { return 1.0f; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(a, UnaryKind::kMulScalar, s,
                  [s](float, float) { return s; });
}

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }

Tensor relu(const Tensor& a) {
  return unary_op(a, UnaryKind::kRelu, 0.0f,
                  [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor leaky_relu(const Tensor& a, float slope) {
  return unary_op(a, UnaryKind::kLeakyRelu, slope, [slope](float x, float) {
    return x > 0.0f ? 1.0f : slope;
  });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(a, UnaryKind::kSigmoid, 0.0f,
                  [](float, float y) { return y * (1.0f - y); });
}

Tensor tanh_op(const Tensor& a) {
  return unary_op(a, UnaryKind::kTanh, 0.0f,
                  [](float, float y) { return 1.0f - y * y; });
}

Tensor exp_op(const Tensor& a) {
  return unary_op(a, UnaryKind::kExp, 0.0f,
                  [](float, float y) { return y; });
}

Tensor log_op(const Tensor& a) {
  return unary_op(a, UnaryKind::kLog, 0.0f,
                  [](float x, float) { return 1.0f / x; });
}

Tensor abs_op(const Tensor& a) {
  return unary_op(a, UnaryKind::kAbs, 0.0f, [](float x, float) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  });
}

Tensor sqrt_op(const Tensor& a) {
  return unary_op(a, UnaryKind::kSqrt, 0.0f,
                  [](float, float y) { return 0.5f / y; });
}

Tensor square(const Tensor& a) {
  return unary_op(a, UnaryKind::kSquare, 0.0f,
                  [](float x, float) { return 2.0f * x; });
}

Tensor softplus(const Tensor& a, float eta) {
  if (eta <= 0.0f) throw std::invalid_argument("softplus: eta must be > 0");
  return unary_op(a, UnaryKind::kSoftplus, eta, [eta](float x, float) {
    const float z = eta * x;
    return z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                     : std::exp(z) / (1.0f + std::exp(z));
  });
}

Tensor sum(const Tensor& a) {
  Tensor out({1});
  // Deterministic blocked reduction (Backend::reduce_sum): partials are
  // combined in block order, so the value is bitwise identical at every
  // thread count.
  out.data()[0] = static_cast<float>(backend().reduce_sum(a.data(), a.numel()));
  Tensor::attach_backward(out, {a}, [a, out = out.impl().get()]() mutable {
    const float g = out->grad[0];
    float* ga = a.grad();
    const std::int64_t n2 = a.numel();
    runtime::parallel_for(elem_grain(n2), static_cast<std::size_t>(n2),
                          [=](std::size_t i0, std::size_t i1) {
                            for (std::size_t i = i0; i < i1; ++i) ga[i] += g;
                          });
  });
  return out;
}

Tensor mean(const Tensor& a) {
  return mul_scalar(sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor sum_axis(const Tensor& a, int axis) {
  if (axis < 0) axis += a.ndim();
  if (axis < 0 || axis >= a.ndim())
    throw std::invalid_argument("sum_axis: axis out of range");
  std::vector<int> oshape = a.shape();
  const int extent = oshape[static_cast<std::size_t>(axis)];
  oshape[static_cast<std::size_t>(axis)] = 1;
  Tensor out(oshape);
  // Decompose indices as (outer, axis, inner).
  std::int64_t inner = 1, outer = 1;
  for (int i = axis + 1; i < a.ndim(); ++i) inner *= a.dim(i);
  for (int i = 0; i < axis; ++i) outer *= a.dim(i);
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t o = 0; o < outer; ++o)
    for (std::int64_t in = 0; in < inner; ++in) {
      double acc = 0.0;
      for (int k = 0; k < extent; ++k)
        acc += static_cast<double>(pa[(o * extent + k) * inner + in]);
      po[o * inner + in] = static_cast<float>(acc);
    }
  Tensor::attach_backward(out, {a}, [a, out = out.impl().get(), outer, inner, extent]() mutable {
    const float* go = out->grad.data();
    float* ga = a.grad();
    for (std::int64_t o = 0; o < outer; ++o)
      for (std::int64_t in = 0; in < inner; ++in) {
        const float g = go[o * inner + in];
        for (int k = 0; k < extent; ++k)
          ga[(o * extent + k) * inner + in] += g;
      }
  });
  return out;
}

Tensor mean_axis(const Tensor& a, int axis) {
  const int ax = axis < 0 ? axis + a.ndim() : axis;
  if (ax < 0 || ax >= a.ndim())
    throw std::invalid_argument("mean_axis: axis out of range");
  return mul_scalar(sum_axis(a, ax),
                    1.0f / static_cast<float>(a.dim(ax)));
}

Tensor variance(const Tensor& a) {
  const Tensor centered = sub(a, mean(a));
  return mean(square(centered));
}

Tensor reshape(const Tensor& a, std::vector<int> shape) {
  Tensor out(shape);
  if (out.numel() != a.numel())
    throw std::invalid_argument("reshape: numel mismatch");
  NF_CHECK(out.numel() == static_cast<std::int64_t>(out.impl()->data.size()),
           "reshape: output storage %zu does not match numel %lld",
           out.impl()->data.size(), static_cast<long long>(out.numel()));
  std::copy(a.data(), a.data() + a.numel(), out.data());
  Tensor::attach_backward(out, {a}, [a, out = out.impl().get()]() mutable {
    const float* go = out->grad.data();
    float* ga = a.grad();
    const std::int64_t n = a.numel();
    for (std::int64_t i = 0; i < n; ++i) ga[i] += go[i];
  });
  return out;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 4 || b.ndim() != 4)
    throw std::invalid_argument("concat_channels: need 4-D tensors");
  if (a.dim(0) != b.dim(0) || a.dim(2) != b.dim(2) || a.dim(3) != b.dim(3))
    throw std::invalid_argument("concat_channels: shape mismatch");
  const int N = a.dim(0), Ca = a.dim(1), Cb = b.dim(1), H = a.dim(2),
            W = a.dim(3);
  Tensor out({N, Ca + Cb, H, W});
  const std::int64_t plane = static_cast<std::int64_t>(H) * W;
  backend().concat_channels_fwd(N, Ca, Cb, plane, a.data(), b.data(),
                                out.data());
  Tensor::attach_backward(out, {a, b}, [a, b, out = out.impl().get(), N, Ca, Cb, plane]() mutable {
    const float* go = out->grad.data();
    for (int n = 0; n < N; ++n) {
      if (a.requires_grad()) {
        float* ga = a.grad();
        for (std::int64_t i = 0; i < Ca * plane; ++i)
          ga[n * Ca * plane + i] += go[n * (Ca + Cb) * plane + i];
      }
      if (b.requires_grad()) {
        float* gb = b.grad();
        for (std::int64_t i = 0; i < Cb * plane; ++i)
          gb[n * Cb * plane + i] += go[(n * (Ca + Cb) + Ca) * plane + i];
      }
    }
  });
  return out;
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  return mean(square(sub(pred, target)));
}

Tensor l1_loss(const Tensor& pred, const Tensor& target) {
  return mean(abs_op(sub(pred, target)));
}

}  // namespace neurfill::nn
