#include "nn/module.hpp"

#include <cmath>
#include <stdexcept>

namespace neurfill::nn {

std::vector<std::pair<std::string, Tensor>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [name, t] : params_) out.emplace_back(name, t);
  for (const auto& [name, child] : children_)
    for (const auto& [pname, t] : child->named_parameters())
      out.emplace_back(name + "." + pname, t);
  return out;
}

std::vector<std::pair<std::string, const Module*>> Module::named_modules()
    const {
  std::vector<std::pair<std::string, const Module*>> out;
  for (const auto& [name, child] : children_) {
    out.emplace_back(name, child.get());
    for (const auto& [cname, sub] : child->named_modules())
      out.emplace_back(name + "." + cname, sub);
  }
  return out;
}

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> out;
  for (auto& [name, t] : named_parameters()) out.push_back(t);
  return out;
}

std::int64_t Module::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& t : parameters()) n += t.numel();
  return n;
}

void Module::zero_grad() {
  for (auto t : parameters()) t.zero_grad();
}

Tensor Module::register_parameter(const std::string& name, Tensor t) {
  t.set_requires_grad(true);
  params_.emplace_back(name, t);
  return t;
}

void Module::register_module(const std::string& name,
                             std::shared_ptr<Module> m) {
  if (!m) throw std::invalid_argument("register_module: null module");
  children_.emplace_back(name, std::move(m));
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, Rng& rng)
    : stride_(stride), padding_(padding) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0)
    throw std::invalid_argument("Conv2d: bad dimensions");
  Tensor w({out_channels, in_channels, kernel, kernel});
  // He-normal: std = sqrt(2 / fan_in) suits the following ReLU.
  const double stddev =
      std::sqrt(2.0 / (static_cast<double>(in_channels) * kernel * kernel));
  for (std::int64_t i = 0; i < w.numel(); ++i)
    w.data()[i] = static_cast<float>(rng.normal(0.0, stddev));
  weight_ = register_parameter("weight", w);
  bias_ = register_parameter("bias", Tensor({out_channels}));
}

Tensor Conv2d::forward(const Tensor& x) {
  return conv2d(x, weight_, bias_, stride_, padding_);
}

GroupNorm::GroupNorm(int channels, int groups) : groups_(groups) {
  gamma_ = register_parameter("gamma", Tensor::ones({channels}));
  beta_ = register_parameter("beta", Tensor({channels}));
}

Tensor GroupNorm::forward(const Tensor& x) {
  return group_norm(x, groups_, gamma_, beta_);
}

namespace {
int pick_groups(int channels) {
  // Largest divisor of `channels` not exceeding 8 keeps group statistics
  // meaningful for narrow layers.
  for (int g = 8; g >= 2; --g)
    if (channels % g == 0) return g;
  return 1;
}
}  // namespace

DoubleConv::DoubleConv(int in_channels, int out_channels, Rng& rng,
                       bool use_group_norm) {
  conv1_ = std::make_shared<Conv2d>(in_channels, out_channels, 3, 1, 1, rng);
  conv2_ = std::make_shared<Conv2d>(out_channels, out_channels, 3, 1, 1, rng);
  register_module("conv1", conv1_);
  register_module("conv2", conv2_);
  if (use_group_norm) {
    norm1_ =
        std::make_shared<GroupNorm>(out_channels, pick_groups(out_channels));
    norm2_ =
        std::make_shared<GroupNorm>(out_channels, pick_groups(out_channels));
    register_module("norm1", norm1_);
    register_module("norm2", norm2_);
  }
}

Tensor DoubleConv::forward(const Tensor& x) {
  Tensor h = conv1_->forward(x);
  if (norm1_) h = norm1_->forward(h);
  h = conv2_->forward(relu(h));
  if (norm2_) h = norm2_->forward(h);
  return relu(h);
}

}  // namespace neurfill::nn
