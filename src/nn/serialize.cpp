#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>

#include "common/checkpoint.hpp"

namespace neurfill::nn {

namespace {

Error format_error(const std::string& path, const std::string& what) {
  return Error(ErrorCode::kCorrupt, "nn.serialize", "'" + path + "': " + what);
}

}  // namespace

[[nodiscard]] Expected<void> save_parameters(const Module& module, const std::string& path) {
  CheckpointWriter writer;
  for (const auto& [name, t] : module.named_parameters()) {
    ByteWriter payload;
    payload.u32(static_cast<std::uint32_t>(t.shape().size()));
    for (const int d : t.shape()) payload.u32(static_cast<std::uint32_t>(d));
    payload.raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
    writer.add_section(name, payload.take());
  }
  return writer.commit(path);
}

[[nodiscard]] Expected<void> load_parameters(Module& module, const std::string& path) {
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  if (!reader.ok()) return reader.error();
  auto params = module.named_parameters();
  if (reader->section_names().size() != params.size())
    return format_error(path, "parameter count mismatch: file has " +
                                  std::to_string(reader->section_names().size()) +
                                  " sections, module has " +
                                  std::to_string(params.size()) +
                                  " parameters");
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::string& name = params[i].first;
    if (reader->section_names()[i] != name)
      return format_error(path, "parameter name mismatch at index " +
                                    std::to_string(i) + ": file section '" +
                                    reader->section_names()[i] +
                                    "', module parameter '" + name + "'");
    const std::vector<char>& payload = **reader->section(name);
    ByteReader r(payload);
    const std::uint32_t ndim = r.u32();
    std::vector<int> dims(ndim);
    for (auto& d : dims) d = static_cast<int>(r.u32());
    Tensor t = params[i].second;
    if (!r.ok() || dims != t.shape())
      return format_error(path, "shape mismatch for parameter '" + name + "'");
    if (!r.raw(t.data(),
               static_cast<std::size_t>(t.numel()) * sizeof(float)) ||
        !r.at_end())
      return format_error(
          path, "payload size mismatch for parameter '" + name + "'");
  }
  return Expected<void>();
}

}  // namespace neurfill::nn
