#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace neurfill::nn {

namespace {
constexpr char kMagic[4] = {'N', 'F', 'W', '1'};

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  if (!is.read(reinterpret_cast<char*>(&v), sizeof(v)))
    throw std::runtime_error("checkpoint: truncated file");
  return v;
}
}  // namespace

void save_parameters(const Module& module, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  os.write(kMagic, sizeof(kMagic));
  const auto params = module.named_parameters();
  write_u32(os, static_cast<std::uint32_t>(params.size()));
  for (const auto& [name, t] : params) {
    write_u32(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u32(os, static_cast<std::uint32_t>(t.shape().size()));
    for (const int d : t.shape()) write_u32(os, static_cast<std::uint32_t>(d));
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("checkpoint: write failed: " + path);
}

void load_parameters(Module& module, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  char magic[4];
  if (!is.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("checkpoint: bad magic in " + path);
  const std::uint32_t count = read_u32(is);
  auto params = module.named_parameters();
  if (count != params.size())
    throw std::runtime_error("checkpoint: parameter count mismatch");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = read_u32(is);
    std::string name(name_len, '\0');
    if (!is.read(name.data(), name_len))
      throw std::runtime_error("checkpoint: truncated name");
    const std::uint32_t ndim = read_u32(is);
    std::vector<int> dims(ndim);
    for (auto& d : dims) d = static_cast<int>(read_u32(is));
    if (name != params[i].first)
      throw std::runtime_error("checkpoint: parameter name mismatch: " + name +
                               " vs " + params[i].first);
    Tensor t = params[i].second;
    if (dims != t.shape())
      throw std::runtime_error("checkpoint: shape mismatch for " + name);
    if (!is.read(reinterpret_cast<char*>(t.data()),
                 static_cast<std::streamsize>(t.numel() * sizeof(float))))
      throw std::runtime_error("checkpoint: truncated data for " + name);
  }
}

}  // namespace neurfill::nn
