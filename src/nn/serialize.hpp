#pragma once

#include <string>

#include "common/error.hpp"
#include "nn/module.hpp"

namespace neurfill::nn {

/// Module parameters persist as an NFCP checkpoint container
/// (common/checkpoint.hpp): one CRC32-checksummed section per parameter,
/// named by the parameter, with payload u32 ndim, u32 dims[ndim],
/// f32 data[numel] (little-endian).  Saving is atomic (write-to-temp +
/// rename), so a crash mid-save never leaves a torn weights file.
///
/// Loading matches strictly by name and shape.  Any failure — missing file,
/// truncation, checksum mismatch, architecture mismatch — comes back as a
/// structured nf::Error naming the file, the section, and (for corruption)
/// the expected vs. actual checksum; nothing throws and nothing aborts.
[[nodiscard]] Expected<void> save_parameters(const Module& module, const std::string& path);
[[nodiscard]] Expected<void> load_parameters(Module& module, const std::string& path);

}  // namespace neurfill::nn
