#pragma once

#include <string>

#include "nn/module.hpp"

namespace neurfill::nn {

/// Binary checkpoint format for module parameters:
///   magic "NFW1", u32 count, then per parameter:
///   u32 name_len, name bytes, u32 ndim, u32 dims[ndim], f32 data[numel].
/// Little-endian (the only platform we target).  Loading matches strictly by
/// name and shape and throws on any mismatch, so silently loading the wrong
/// architecture is impossible.
void save_parameters(const Module& module, const std::string& path);
void load_parameters(Module& module, const std::string& path);

}  // namespace neurfill::nn
