#include "nn/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>  // nf-lint: allow(determinism) — membership only

#include "common/check.hpp"

namespace neurfill::nn {

Tensor::Tensor(std::vector<int> shape, bool requires_grad) {
  for (const int d : shape)
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive dimension");
  if (shape.size() > 4)
    throw std::invalid_argument("Tensor: more than 4 dimensions");
  impl_ = std::make_shared<detail::TensorImpl>();
  impl_->shape = std::move(shape);
  impl_->data.assign(static_cast<std::size_t>(impl_->numel()), 0.0f);
  impl_->requires_grad = requires_grad;
}

Tensor Tensor::zeros(std::vector<int> shape, bool requires_grad) {
  return Tensor(std::move(shape), requires_grad);
}

Tensor Tensor::ones(std::vector<int> shape, bool requires_grad) {
  return full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::full(std::vector<int> shape, float value, bool requires_grad) {
  Tensor t(std::move(shape), requires_grad);
  std::fill(t.impl_->data.begin(), t.impl_->data.end(), value);
  return t;
}

Tensor Tensor::from_data(std::vector<int> shape, std::vector<float> values,
                         bool requires_grad) {
  Tensor t(std::move(shape), requires_grad);
  if (t.impl_->data.size() != values.size())
    throw std::invalid_argument("Tensor::from_data: size mismatch");
  t.impl_->data = std::move(values);
  return t;
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return from_data({1}, {value}, requires_grad);
}

float Tensor::item() const {
  if (numel() != 1) throw std::logic_error("Tensor::item on non-scalar");
  return impl_->data[0];
}

float* Tensor::grad() const {
  NF_CHECK(defined(), "Tensor::grad on undefined tensor");
  impl_->ensure_grad();
  NF_CHECK(impl_->grad.size() == impl_->data.size(),
           "Tensor::grad: grad buffer %zu elements, data %zu",
           impl_->grad.size(), impl_->data.size());
  return impl_->grad.data();
}

void Tensor::zero_grad() const {
  if (!impl_->grad.empty())
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

Tensor Tensor::detach() const {
  Tensor t;
  t.impl_ = std::make_shared<detail::TensorImpl>();
  t.impl_->shape = impl_->shape;
  t.impl_->data = impl_->data;
  t.impl_->requires_grad = false;
  return t;
}

void Tensor::attach_backward(Tensor& out, const std::vector<Tensor>& inputs,
                             std::function<void()> backward) {
  NF_CHECK(out.defined(), "attach_backward: undefined output");
  bool any = false;
  for (const Tensor& t : inputs) {
    NF_CHECK(t.defined(), "attach_backward: undefined input");
    any = any || t.requires_grad();
  }
  if (!any) return;
  out.impl_->requires_grad = true;
  out.impl_->parents.reserve(inputs.size());
  for (const Tensor& t : inputs) out.impl_->parents.push_back(t.impl());
  out.impl_->backward_fn = std::move(backward);
}

void Tensor::backward() {
  if (numel() != 1)
    throw std::logic_error("Tensor::backward: root must be a scalar");
  if (!impl_->requires_grad)
    throw std::logic_error("Tensor::backward: root does not require grad");

  // Iterative DFS topological sort over the tape.
  std::vector<detail::TensorImpl*> order;
  // Membership-only visited set: its iteration order is never observed,
  // so hash ordering cannot leak into results.  Traversal order comes
  // from the deterministic `parents` vectors.
  // nf-lint: allow(determinism)
  std::unordered_set<detail::TensorImpl*> visited;
  std::vector<std::pair<detail::TensorImpl*, std::size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      detail::TensorImpl* p = node->parents[next++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->ensure_grad();
  impl_->grad[0] = 1.0f;
  // `order` is post-order (parents before children), so walk it backwards:
  // children first, propagating grads down the tape.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::TensorImpl* node = *it;
    if (!node->backward_fn) continue;
    node->ensure_grad();
    NF_CHECK(node->grad.size() == node->data.size(),
             "Tensor::backward: grad/data size mismatch (%zu vs %zu)",
             node->grad.size(), node->data.size());
    for (auto& p : node->parents)
      if (p->requires_grad) p->ensure_grad();
    node->backward_fn();
  }
}

std::string shape_to_string(const std::vector<int>& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ',';
    os << shape[i];
  }
  os << ']';
  return os.str();
}

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace neurfill::nn
