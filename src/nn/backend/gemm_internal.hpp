#pragma once

#include <functional>

// CpuBackend-internal GEMM entry point: the packed kernel with a
// caller-supplied B operand.  Kernels that already gather their right-hand
// side (the fused convolution packs directly from the input tensor with
// im2col indexing) plug in here and skip materializing B entirely — one
// gather pass replaces the unfold write + the packing read.  Not part of
// the public Backend contract; see docs/inference.md.

namespace neurfill::nn {

/// Column width of one packed B sliver.  Mirrors the micro-kernel's kNr in
/// cpu_gemm.cpp (static_asserted there).
inline constexpr int kGemmNr = 16;

/// K-slab depth of the cache-blocked GEMM.  Mirrors kKc in cpu_gemm.cpp
/// (static_asserted there).  The direct convolution kernel in
/// cpu_backend.cpp replays this slab boundary — partial sums flushed at
/// every kGemmKc products, flushes combined in ascending slab order — so
/// its per-element accumulation chains are bitwise identical to running
/// the same convolution through im2col + the packed GEMM.
inline constexpr int kGemmKc = 256;

/// Fills packed sliver `s` of the logical (K x N) operand B: K rows of
/// kGemmNr floats each, k-major, columns [s*kGemmNr, s*kGemmNr + kGemmNr)
/// zero-padded past N.  Must be thread-safe and pure: slivers are packed
/// from a parallel loop in an unspecified order.
using GemmPackBFn = std::function<void(int sliver, float* dst)>;

/// C (MxN) = A(MxK) * B, `accumulate=false` overwrites C, with B supplied
/// sliver-by-sliver through `pack_b`.  Same tile/slab decomposition — and
/// therefore bitwise the same result at any thread count — as gemm_nn on a
/// materialized B (see nn/gemm.hpp).
void gemm_packed_b(int M, int N, int K, const float* A,
                   const GemmPackBFn& pack_b, float* C, bool accumulate);

/// Floats of the pre-packed panel gemm_pack_a produces for an (M x K)
/// row-major A operand.  The layout is the driver's internal Mr-interleaved
/// tile/slab panel order and is opaque to callers: a panel is valid only
/// for the exact (M, K) it was packed for.
std::size_t gemm_packed_a_floats(int M, int K);

/// Packs the (M x K) row-major operand A once, for repeated use by
/// gemm_prepacked_a.  Intended for constant operands (inference weights):
/// packing is hoisted out of every subsequent multiply.
void gemm_pack_a(const float* A, int M, int K, float* dst);

/// gemm_packed_b with the A operand supplied as a pre-packed panel from
/// gemm_pack_a.  Runs the identical tile/slab/sliver decomposition and
/// micro-kernel — the panel holds exactly the bytes the driver would have
/// packed in-loop — so the result is bitwise identical to gemm_packed_b on
/// the raw A at any thread count.
void gemm_prepacked_a(int M, int N, int K, const float* packed_a,
                      const GemmPackBFn& pack_b, float* C, bool accumulate);

}  // namespace neurfill::nn
