#pragma once

#include <functional>

// CpuBackend-internal GEMM entry point: the packed kernel with a
// caller-supplied B operand.  Kernels that already gather their right-hand
// side (the fused convolution packs directly from the input tensor with
// im2col indexing) plug in here and skip materializing B entirely — one
// gather pass replaces the unfold write + the packing read.  Not part of
// the public Backend contract; see docs/inference.md.

namespace neurfill::nn {

/// Column width of one packed B sliver.  Mirrors the micro-kernel's kNr in
/// cpu_gemm.cpp (static_asserted there).
inline constexpr int kGemmNr = 16;

/// K-slab depth of the cache-blocked GEMM.  Mirrors kKc in cpu_gemm.cpp
/// (static_asserted there).  The direct convolution kernel in
/// cpu_backend.cpp replays this slab boundary — partial sums flushed at
/// every kGemmKc products, flushes combined in ascending slab order — so
/// its per-element accumulation chains are bitwise identical to running
/// the same convolution through im2col + the packed GEMM.
inline constexpr int kGemmKc = 256;

/// Fills packed sliver `s` of the logical (K x N) operand B: K rows of
/// kGemmNr floats each, k-major, columns [s*kGemmNr, s*kGemmNr + kGemmNr)
/// zero-padded past N.  Must be thread-safe and pure: slivers are packed
/// from a parallel loop in an unspecified order.
using GemmPackBFn = std::function<void(int sliver, float* dst)>;

/// C (MxN) = A(MxK) * B, `accumulate=false` overwrites C, with B supplied
/// sliver-by-sliver through `pack_b`.  Same tile/slab decomposition — and
/// therefore bitwise the same result at any thread count — as gemm_nn on a
/// materialized B (see nn/gemm.hpp).
void gemm_packed_b(int M, int N, int K, const float* A,
                   const GemmPackBFn& pack_b, float* C, bool accumulate);

}  // namespace neurfill::nn
