#include "nn/backend/cpu_backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "nn/backend/gemm_internal.hpp"
#include "nn/gemm.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace neurfill::nn {

namespace {

/// Convolutions whose per-sample unfold matrix (C*kh*kw rows x Hout*Wout
/// columns) is at or below this many elements run entirely inside a runtime
/// SerialRegion — im2col/col2im, the packed GEMM, and the bias loops all
/// degrade to inline blocks.  Same treatment as the contact solver's
/// kSerialSolveCells (PR 4): a UNet-encoder-sized layer (16ch 64x64, k3 —
/// the bench shape) splits each sub-loop into blocks of a few hundred
/// microseconds, and at 4 threads the per-loop fork/join handshakes cost
/// more than the parallelism saves (conv2d_fwd_speedup_4t was 0.82 in the
/// old BENCH_runtime.json).  The primitives are bitwise-deterministic, so
/// forcing serial execution changes scheduling only, never results.
constexpr std::size_t kSerialConvUnfoldElems = 1u << 20;

/// Grain for flat elementwise loops: ~2 ns per element (load, a few ALU
/// ops, store), converted by runtime::grain_for_cost into ~25 us blocks;
/// loops under ~50 us run inline as a single block instead of forking.
/// Depends only on n — never the thread count — so the block decomposition
/// (and therefore every parallel_reduce combine order) is identical at any
/// thread count.
inline std::size_t elem_grain(std::int64_t n) {
  return runtime::grain_for_cost(2.0, static_cast<std::size_t>(n));
}

/// A 1x1 kernel with unit stride and no padding unfolds to the input
/// itself: im2col would produce a verbatim copy of the (C, H*W) sample, so
/// the GEMM streams the input directly (bitwise the same product).
bool identity_unfold(const Conv2dGeom& g) {
  return g.kernel_h == 1 && g.kernel_w == 1 && g.stride == 1 &&
         g.padding == 0;
}

/// Output extent / unfold-geometry agreement shared by im2col and col2im.
/// The callers derive (Hout, Wout) from (H, W, kernel, stride, pad); a
/// mismatch here means the GEMM that follows would read or scatter past the
/// unfolded buffer.
void check_unfold_geometry(const char* name, int H, int W, int kh, int kw,
                           int stride, int pad, int Hout, int Wout) {
  NF_CHECK(stride >= 1, "%s: stride %d", name, stride);
  NF_CHECK(pad >= 0, "%s: negative padding %d", name, pad);
  NF_CHECK((H + 2 * pad - kh) / stride + 1 == Hout &&
               (W + 2 * pad - kw) / stride + 1 == Wout,
           "%s: output %dx%d disagrees with input %dx%d kernel %dx%d "
           "stride %d pad %d",
           name, Hout, Wout, H, W, kh, kw, stride, pad);
}

/// im2col: unfold (C,H,W) into a (C*kh*kw, Hout*Wout) matrix for kernel
/// (kh,kw), stride s, symmetric zero padding p.
void im2col(const float* x, int C, int H, int W, int kh, int kw, int stride,
            int pad, int Hout, int Wout, float* col) {
  check_unfold_geometry("im2col", H, W, kh, kw, stride, pad, Hout, Wout);
  const int cols = Hout * Wout;
  // Each unfolded row (c, ki, kj) writes a disjoint `cols`-wide slice, so
  // the plane loop parallelizes directly; one plane costs ~1.5 ns per
  // output element (predicated copy), so the grain comes from the cost
  // model and small unfolds run inline.
  const std::size_t planes = static_cast<std::size_t>(C * kh * kw);
  runtime::parallel_for(
      runtime::grain_for_cost(1.5 * static_cast<double>(cols), planes), planes,
      [=](std::size_t p0, std::size_t p1) {
        for (std::size_t p = p0; p < p1; ++p) {
          const int c = static_cast<int>(p) / (kh * kw);
          const int ki = (static_cast<int>(p) / kw) % kh;
          const int kj = static_cast<int>(p) % kw;
          float* dst = col + p * static_cast<std::size_t>(cols);
          for (int oi = 0; oi < Hout; ++oi) {
            const int ii = oi * stride + ki - pad;
            if (ii < 0 || ii >= H) {
              std::memset(dst + oi * Wout, 0,
                          sizeof(float) * static_cast<std::size_t>(Wout));
              continue;
            }
            const float* src = x + (c * H + ii) * W;
            for (int oj = 0; oj < Wout; ++oj) {
              const int jj = oj * stride + kj - pad;
              dst[oi * Wout + oj] = (jj >= 0 && jj < W) ? src[jj] : 0.0f;
            }
          }
        }
      });
}

/// col2im: adjoint of im2col; accumulates into x.
void col2im(const float* col, int C, int H, int W, int kh, int kw, int stride,
            int pad, int Hout, int Wout, float* x) {
  check_unfold_geometry("col2im", H, W, kh, kw, stride, pad, Hout, Wout);
  const int cols = Hout * Wout;
  // The (ki, kj) scatters of one channel overlap each other but never cross
  // channels, so the accumulation parallelizes over c only; within a
  // channel the scatter order is the fixed serial one.  One channel costs
  // ~2 ns per (kernel tap x output element) accumulate.
  const double chan_cost_ns = 2.0 * static_cast<double>(kh * kw) *
                              static_cast<double>(cols);
  runtime::parallel_for(
      runtime::grain_for_cost(chan_cost_ns, static_cast<std::size_t>(C)),
      static_cast<std::size_t>(C), [=](std::size_t c0, std::size_t c1) {
  for (int c = static_cast<int>(c0); c < static_cast<int>(c1); ++c) {
    for (int ki = 0; ki < kh; ++ki) {
      for (int kj = 0; kj < kw; ++kj) {
        const float* src = col + ((c * kh + ki) * kw + kj) * cols;
        for (int oi = 0; oi < Hout; ++oi) {
          const int ii = oi * stride + ki - pad;
          if (ii < 0 || ii >= H) continue;
          float* dst = x + (c * H + ii) * W;
          for (int oj = 0; oj < Wout; ++oj) {
            const int jj = oj * stride + kj - pad;
            if (jj >= 0 && jj < W) dst[jj] += src[oi * Wout + oj];
          }
        }
      }
    }
  }
  });
}

/// Packs one kGemmNr-wide column sliver of the im2col matrix directly from
/// the input sample — element (k, j) of the unfold gathered on the fly.
/// Produces exactly the bytes pack_b_sliver would read from a materialized
/// im2col buffer, so the GEMM result is bitwise unchanged; the unfold's
/// write pass and the packer's read pass simply disappear.
void pack_conv_sliver(const float* x, int C, int H, int W, int kh, int kw,
                      int stride, int pad, int Hout, int Wout, int s,
                      float* dst) {
  const int cols = Hout * Wout;
  const int j0 = s * kGemmNr;
  const int nr = std::min(kGemmNr, cols - j0);
  int oi[kGemmNr], oj[kGemmNr];
  for (int jj = 0; jj < nr; ++jj) {
    oi[jj] = (j0 + jj) / Wout;
    oj[jj] = (j0 + jj) % Wout;
  }
  const int K = C * kh * kw;
  for (int k = 0; k < K; ++k) {
    const int c = k / (kh * kw);
    const int ki = (k / kw) % kh;
    const int kj = k % kw;
    const float* plane = x + static_cast<std::size_t>(c) * H * W;
    float* row = dst + static_cast<std::size_t>(k) * kGemmNr;
    for (int jj = 0; jj < nr; ++jj) {
      const int ii = oi[jj] * stride + ki - pad;
      const int jw = oj[jj] * stride + kj - pad;
      row[jj] =
          (ii >= 0 && ii < H && jw >= 0 && jw < W) ? plane[ii * W + jw] : 0.0f;
    }
    for (int jj = nr; jj < kGemmNr; ++jj) row[jj] = 0.0f;
  }
}

/// Batched variant of pack_conv_sliver: the logical B operand is the
/// horizontal concatenation of every sample's im2col matrix, (K x
/// batch*cols), so sliver `s` may straddle sample boundaries.  Column
/// n*cols + j holds sample n's unfold column j — exactly the bytes sample
/// n's own pack_conv_sliver would produce for that column, so each sample's
/// slice of the fused GEMM is bitwise the per-sample product.
void pack_conv_sliver_batched(const float* x, int C, int H, int W, int kh,
                              int kw, int stride, int pad, int Hout, int Wout,
                              int batch, int s, float* dst) {
  const int cols = Hout * Wout;
  const int total = batch * cols;
  const int j0 = s * kGemmNr;
  const int nr = std::min(kGemmNr, total - j0);
  int n[kGemmNr], oi[kGemmNr], oj[kGemmNr];
  for (int jj = 0; jj < nr; ++jj) {
    const int jg = j0 + jj;
    n[jj] = jg / cols;
    const int jl = jg % cols;
    oi[jj] = jl / Wout;
    oj[jj] = jl % Wout;
  }
  const int K = C * kh * kw;
  const std::size_t sample_elems = static_cast<std::size_t>(C) * H * W;
  for (int k = 0; k < K; ++k) {
    const int c = k / (kh * kw);
    const int ki = (k / kw) % kh;
    const int kj = k % kw;
    const float* plane = x + static_cast<std::size_t>(c) * H * W;
    float* row = dst + static_cast<std::size_t>(k) * kGemmNr;
    for (int jj = 0; jj < nr; ++jj) {
      const int ii = oi[jj] * stride + ki - pad;
      const int jw = oj[jj] * stride + kj - pad;
      row[jj] = (ii >= 0 && ii < H && jw >= 0 && jw < W)
                    ? plane[n[jj] * sample_elems + ii * W + jw]
                    : 0.0f;
    }
    for (int jj = nr; jj < kGemmNr; ++jj) row[jj] = 0.0f;
  }
}

// ---------------------------------------------------------------------------
// Direct stride-1 convolution (the fused inference path).
//
// Skinny GEMMs dominate the surrogate UNet: M is the output-channel count
// (8..64) while the im2col operand is K x Hout*Wout.  The packed GEMM
// streams that operand through memory three times (unfold write, pack
// write, kernel read), which is the whole cost at these shapes.  The
// direct kernel computes output elements straight from padded input rows:
// zero unfold, zero packing, and the input rows stay in L1 across all
// output channels.
//
// Bitwise contract: every output element accumulates its K products in
// exactly the order the packed GEMM uses — ascending k = (c, ki, kj), a
// fresh partial sum per kGemmKc-slab, partials combined in ascending slab
// order, with the padding zeros participating in the chain just as a
// materialized im2col would have them.  The vector and scalar bodies below
// use the same expression shape as the GEMM micro-kernel (`acc += w * x`),
// so the compiler makes the same contraction choice in both TUs (both
// compile under NEURFILL_KERNEL_FLAGS) and fused-vs-unfused stays bitwise
// equal (asserted by tests/test_inference.cpp).
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define NEURFILL_CONV_VECTOR_EXT 1
/// Output vectors of the direct kernel.  Lane count is semantically
/// irrelevant — every output element owns an independent per-lane chain —
/// so the row driver picks the widest block that fits the output row:
/// 16-lane blocks halve the broadcast-load pressure per FLOP on AVX-512
/// hosts (where they map to single zmm registers), 8-lane blocks fit the
/// 16-register AVX2 file and the 8-wide bottleneck rows.
typedef float VOut4 __attribute__((vector_size(4 * sizeof(float))));
typedef float VOut8 __attribute__((vector_size(8 * sizeof(float))));
typedef float VOut16 __attribute__((vector_size(16 * sizeof(float))));
#endif

/// Output channels per register block: every UNet stage width (8/16/32/64)
/// is a multiple, so the remainder path only ever sees the 1-channel head.
constexpr int kConvOr = 8;

/// One output element through the GEMM-ordered chain: ascending-k partial
/// sums flushed at kGemmKc boundaries, flushes combined in slab order.
float conv_direct_one(const float* const* prows, const float* wo, int C,
                      int kh, int kw, int j) {
  float total = 0.0f, acc = 0.0f;
  bool flushed = false;
  int boundary = kGemmKc;
  int k = 0;
  for (int c = 0; c < C; ++c)
    for (int ki = 0; ki < kh; ++ki) {
      const float* row = prows[c * kh + ki] + j;
      for (int kj = 0; kj < kw; ++kj, ++k) {
        if (k == boundary) {
          total = flushed ? total + acc : acc;
          flushed = true;
          acc = 0.0f;
          boundary += kGemmKc;
        }
        acc += wo[k] * row[kj];
      }
    }
  return flushed ? total + acc : acc;
}

#if NEURFILL_CONV_VECTOR_EXT
/// kConvOr channels x lanes-of-V output columns in registers: one input
/// vector load feeds kConvOr independent accumulation chains, giving the
/// ILP the single-chain scalar loop lacks, with the input rows shared
/// across channels straight from L1.
///
/// All block kernels below take the filters either raw ([o][k] rows, WP =
/// false) or as the conv_weight_pack transposed panel ([k][o] blocks, WP =
/// true, `wgt` pointing at this kConvOr-channel block); the loaded values
/// and the FMA order are identical either way, so the two instantiations
/// are bitwise-equal and only differ in weight cache behavior.
template <typename V, bool WP = false>
void conv_direct_block(const float* const* prows, const float* wgt, int K,
                       int C, int kh, int kw, int j, std::int64_t cols,
                       float* out) {
  V total[kConvOr] = {}, acc[kConvOr] = {};
  bool flushed = false;
  int boundary = kGemmKc;
  int k = 0;
  for (int c = 0; c < C; ++c)
    for (int ki = 0; ki < kh; ++ki) {
      const float* row = prows[c * kh + ki] + j;
      for (int kj = 0; kj < kw; ++kj, ++k) {
        if (k == boundary) {
          for (int i = 0; i < kConvOr; ++i) {
            total[i] = flushed ? total[i] + acc[i] : acc[i];
            acc[i] = V{};
          }
          flushed = true;
          boundary += kGemmKc;
        }
        V xv;
        __builtin_memcpy(&xv, row + kj, sizeof xv);
        const float* wk =
            WP ? wgt + static_cast<std::size_t>(k) * kConvOr : wgt + k;
        for (int i = 0; i < kConvOr; ++i)
          acc[i] += (WP ? wk[i] : wk[static_cast<std::size_t>(i) * K]) * xv;
      }
    }
  for (int i = 0; i < kConvOr; ++i) {
    const V v = flushed ? total[i] + acc[i] : acc[i];
    __builtin_memcpy(out + static_cast<std::int64_t>(i) * cols, &v, sizeof v);
  }
}

/// Two lanes-of-V column blocks sharing each weight broadcast: per k the
/// kernel issues one broadcast and two input loads for 2*kConvOr FMAs,
/// easing the load-port pressure that bounds the single-block variant on
/// wide output rows.  Per-element chains are untouched.
template <typename V, bool WP = false>
void conv_direct_block2(const float* const* prows, const float* wgt, int K,
                        int C, int kh, int kw, int j, std::int64_t cols,
                        float* out) {
  constexpr int lanes = static_cast<int>(sizeof(V) / sizeof(float));
  V total0[kConvOr] = {}, acc0[kConvOr] = {};
  V total1[kConvOr] = {}, acc1[kConvOr] = {};
  bool flushed = false;
  int boundary = kGemmKc;
  int k = 0;
  for (int c = 0; c < C; ++c)
    for (int ki = 0; ki < kh; ++ki) {
      const float* row = prows[c * kh + ki] + j;
      for (int kj = 0; kj < kw; ++kj, ++k) {
        if (k == boundary) {
          for (int i = 0; i < kConvOr; ++i) {
            total0[i] = flushed ? total0[i] + acc0[i] : acc0[i];
            total1[i] = flushed ? total1[i] + acc1[i] : acc1[i];
            acc0[i] = V{};
            acc1[i] = V{};
          }
          flushed = true;
          boundary += kGemmKc;
        }
        V xv0, xv1;
        __builtin_memcpy(&xv0, row + kj, sizeof xv0);
        __builtin_memcpy(&xv1, row + kj + lanes, sizeof xv1);
        const float* wk =
            WP ? wgt + static_cast<std::size_t>(k) * kConvOr : wgt + k;
        for (int i = 0; i < kConvOr; ++i) {
          const float wi = WP ? wk[i] : wk[static_cast<std::size_t>(i) * K];
          acc0[i] += wi * xv0;
          acc1[i] += wi * xv1;
        }
      }
    }
  for (int i = 0; i < kConvOr; ++i) {
    const V v0 = flushed ? total0[i] + acc0[i] : acc0[i];
    const V v1 = flushed ? total1[i] + acc1[i] : acc1[i];
    float* dst = out + static_cast<std::int64_t>(i) * cols;
    __builtin_memcpy(dst, &v0, sizeof v0);
    __builtin_memcpy(dst + lanes, &v1, sizeof v1);
  }
}

/// Single-channel vector block for the O % kConvOr remainder (the 1x1
/// output head): one chain, still vectorized across output columns.
template <typename V>
void conv_direct_block1(const float* const* prows, const float* wo, int C,
                        int kh, int kw, int j, float* out) {
  V total = {}, acc = {};
  bool flushed = false;
  int boundary = kGemmKc;
  int k = 0;
  for (int c = 0; c < C; ++c)
    for (int ki = 0; ki < kh; ++ki) {
      const float* row = prows[c * kh + ki] + j;
      for (int kj = 0; kj < kw; ++kj, ++k) {
        if (k == boundary) {
          total = flushed ? total + acc : acc;
          flushed = true;
          acc = V{};
          boundary += kGemmKc;
        }
        V xv;
        __builtin_memcpy(&xv, row + kj, sizeof xv);
        acc += wo[k] * xv;
      }
    }
  const V v = flushed ? total + acc : acc;
  __builtin_memcpy(out + j, &v, sizeof v);
}

/// Two OUTPUT ROWS packed into one vector: lanes [0, half) are columns
/// j..j+half of output row oi, lanes [half, 2*half) the same columns of row
/// oi+1.  The narrow bottleneck rows (Wout = 8) fill only half a 16-lane
/// register on their own, capping them at the 8-lane FMA rate; pairing rows
/// restores full-width FMAs.  Each lane still owns an independent
/// GEMM-ordered chain, so pairing never perturbs a single output bit.
template <bool WP = false>
void conv_direct_block_pair(const float* const* prows0,
                            const float* const* prows1, const float* wgt,
                            int K, int C, int kh, int kw, int j, int wout,
                            std::int64_t cols, float* out) {
  using V = VOut16;
  constexpr int half = static_cast<int>(sizeof(V) / sizeof(float)) / 2;
  V total[kConvOr] = {}, acc[kConvOr] = {};
  bool flushed = false;
  int boundary = kGemmKc;
  int k = 0;
  for (int c = 0; c < C; ++c)
    for (int ki = 0; ki < kh; ++ki) {
      const float* row0 = prows0[c * kh + ki] + j;
      const float* row1 = prows1[c * kh + ki] + j;
      for (int kj = 0; kj < kw; ++kj, ++k) {
        if (k == boundary) {
          for (int i = 0; i < kConvOr; ++i) {
            total[i] = flushed ? total[i] + acc[i] : acc[i];
            acc[i] = V{};
          }
          flushed = true;
          boundary += kGemmKc;
        }
        // Half-vector loads combined in registers (shufflevector compiles
        // to a single insert); round-tripping the build through a stack
        // temporary would stall every iteration on store forwarding.
        VOut8 lo, hi;
        __builtin_memcpy(&lo, row0 + kj, sizeof lo);
        __builtin_memcpy(&hi, row1 + kj, sizeof hi);
        const V xv = __builtin_shufflevector(lo, hi, 0, 1, 2, 3, 4, 5, 6, 7,
                                             8, 9, 10, 11, 12, 13, 14, 15);
        const float* wk =
            WP ? wgt + static_cast<std::size_t>(k) * kConvOr : wgt + k;
        for (int i = 0; i < kConvOr; ++i)
          acc[i] += (WP ? wk[i] : wk[static_cast<std::size_t>(i) * K]) * xv;
      }
    }
  for (int i = 0; i < kConvOr; ++i) {
    const V v = flushed ? total[i] + acc[i] : acc[i];
    float* dst = out + static_cast<std::int64_t>(i) * cols;
    __builtin_memcpy(dst, &v, half * sizeof(float));
    __builtin_memcpy(dst + wout, reinterpret_cast<const float*>(&v) + half,
                     half * sizeof(float));
  }
}

/// Two full-width OUTPUT ROWS sharing each weight broadcast: vector 0 is
/// columns j..j+lanes of output row oi, vector 1 the same columns of row
/// oi+1.  The column-pair variant (conv_direct_block2) needs 2*lanes
/// columns in one row; 16-wide rows on a 16-lane host never have them, so
/// each row runs a lone block at half the FMA-per-broadcast rate.  Pairing
/// rows instead restores the 2x ratio with the same independent chains.
template <typename V, bool WP = false>
void conv_direct_block2_rows(const float* const* prows0,
                             const float* const* prows1, const float* wgt,
                             int K, int C, int kh, int kw, int j, int wout,
                             std::int64_t cols, float* out) {
  V total0[kConvOr] = {}, acc0[kConvOr] = {};
  V total1[kConvOr] = {}, acc1[kConvOr] = {};
  bool flushed = false;
  int boundary = kGemmKc;
  int k = 0;
  for (int c = 0; c < C; ++c)
    for (int ki = 0; ki < kh; ++ki) {
      const std::size_t rk = static_cast<std::size_t>(c) * kh + ki;
      const float* row0 = prows0[rk] + j;
      const float* row1 = prows1[rk] + j;
      for (int kj = 0; kj < kw; ++kj, ++k) {
        if (k == boundary) {
          for (int i = 0; i < kConvOr; ++i) {
            total0[i] = flushed ? total0[i] + acc0[i] : acc0[i];
            total1[i] = flushed ? total1[i] + acc1[i] : acc1[i];
            acc0[i] = V{};
            acc1[i] = V{};
          }
          flushed = true;
          boundary += kGemmKc;
        }
        V xv0, xv1;
        __builtin_memcpy(&xv0, row0 + kj, sizeof xv0);
        __builtin_memcpy(&xv1, row1 + kj, sizeof xv1);
        const float* wk =
            WP ? wgt + static_cast<std::size_t>(k) * kConvOr : wgt + k;
        for (int i = 0; i < kConvOr; ++i) {
          const float wi = WP ? wk[i] : wk[static_cast<std::size_t>(i) * K];
          acc0[i] += wi * xv0;
          acc1[i] += wi * xv1;
        }
      }
    }
  for (int i = 0; i < kConvOr; ++i) {
    const V v0 = flushed ? total0[i] + acc0[i] : acc0[i];
    const V v1 = flushed ? total1[i] + acc1[i] : acc1[i];
    float* dst = out + static_cast<std::int64_t>(i) * cols;
    __builtin_memcpy(dst, &v0, sizeof v0);
    __builtin_memcpy(dst + wout, &v1, sizeof v1);
  }
}

/// FOUR 8-wide output rows as two row-pair vectors sharing each weight
/// broadcast: vector 0 packs rows oi/oi+1 (conv_direct_block_pair's
/// layout), vector 1 rows oi+2/oi+3.  Same FMA-per-broadcast doubling as
/// conv_direct_block2_rows, one level narrower.
template <bool WP = false>
void conv_direct_block_pair2(const float* const* prows0,
                             const float* const* prows1,
                             const float* const* prows2,
                             const float* const* prows3, const float* wgt,
                             int K, int C, int kh, int kw, int j, int wout,
                             std::int64_t cols, float* out) {
  using V = VOut16;
  constexpr int half = static_cast<int>(sizeof(V) / sizeof(float)) / 2;
  V total0[kConvOr] = {}, acc0[kConvOr] = {};
  V total1[kConvOr] = {}, acc1[kConvOr] = {};
  bool flushed = false;
  int boundary = kGemmKc;
  int k = 0;
  for (int c = 0; c < C; ++c)
    for (int ki = 0; ki < kh; ++ki) {
      const std::size_t rk = static_cast<std::size_t>(c) * kh + ki;
      const float* row0 = prows0[rk] + j;
      const float* row1 = prows1[rk] + j;
      const float* row2 = prows2[rk] + j;
      const float* row3 = prows3[rk] + j;
      for (int kj = 0; kj < kw; ++kj, ++k) {
        if (k == boundary) {
          for (int i = 0; i < kConvOr; ++i) {
            total0[i] = flushed ? total0[i] + acc0[i] : acc0[i];
            total1[i] = flushed ? total1[i] + acc1[i] : acc1[i];
            acc0[i] = V{};
            acc1[i] = V{};
          }
          flushed = true;
          boundary += kGemmKc;
        }
        VOut8 a, b, c2, d;
        __builtin_memcpy(&a, row0 + kj, sizeof a);
        __builtin_memcpy(&b, row1 + kj, sizeof b);
        __builtin_memcpy(&c2, row2 + kj, sizeof c2);
        __builtin_memcpy(&d, row3 + kj, sizeof d);
        const V xv0 = __builtin_shufflevector(a, b, 0, 1, 2, 3, 4, 5, 6, 7, 8,
                                              9, 10, 11, 12, 13, 14, 15);
        const V xv1 = __builtin_shufflevector(c2, d, 0, 1, 2, 3, 4, 5, 6, 7, 8,
                                              9, 10, 11, 12, 13, 14, 15);
        const float* wk =
            WP ? wgt + static_cast<std::size_t>(k) * kConvOr : wgt + k;
        for (int i = 0; i < kConvOr; ++i) {
          const float wi = WP ? wk[i] : wk[static_cast<std::size_t>(i) * K];
          acc0[i] += wi * xv0;
          acc1[i] += wi * xv1;
        }
      }
    }
  for (int i = 0; i < kConvOr; ++i) {
    const V v0 = flushed ? total0[i] + acc0[i] : acc0[i];
    const V v1 = flushed ? total1[i] + acc1[i] : acc1[i];
    float* dst = out + static_cast<std::int64_t>(i) * cols;
    __builtin_memcpy(dst, &v0, half * sizeof(float));
    __builtin_memcpy(dst + wout, reinterpret_cast<const float*>(&v0) + half,
                     half * sizeof(float));
    __builtin_memcpy(dst + 2 * wout, &v1, half * sizeof(float));
    __builtin_memcpy(dst + 3 * wout, reinterpret_cast<const float*>(&v1) + half,
                     half * sizeof(float));
  }
}

/// FOUR output rows packed into one 16-lane vector: lanes [q*4, q*4+4) are
/// columns j..j+4 of output row oi+q.  The 4-wide UNet stages (a 16-window
/// tile's middle encoder/decoder level) would otherwise fall to the packed
/// GEMM, whose per-element unfold gather costs more than the product
/// itself at these shapes; quad packing keeps them on the zero-copy direct
/// kernel at full vector width.  Lanes are independent chains — packing
/// never perturbs a single output bit.
template <bool WP = false>
void conv_direct_block_quad(const float* const* prows0,
                            const float* const* prows1,
                            const float* const* prows2,
                            const float* const* prows3, const float* wgt,
                            int K, int C, int kh, int kw, int j, int wout,
                            std::int64_t cols, float* out) {
  using V = VOut16;
  constexpr int quarter = static_cast<int>(sizeof(V) / sizeof(float)) / 4;
  V total[kConvOr] = {}, acc[kConvOr] = {};
  bool flushed = false;
  int boundary = kGemmKc;
  int k = 0;
  for (int c = 0; c < C; ++c)
    for (int ki = 0; ki < kh; ++ki) {
      const std::size_t rk = static_cast<std::size_t>(c) * kh + ki;
      const float* row0 = prows0[rk] + j;
      const float* row1 = prows1[rk] + j;
      const float* row2 = prows2[rk] + j;
      const float* row3 = prows3[rk] + j;
      for (int kj = 0; kj < kw; ++kj, ++k) {
        if (k == boundary) {
          for (int i = 0; i < kConvOr; ++i) {
            total[i] = flushed ? total[i] + acc[i] : acc[i];
            acc[i] = V{};
          }
          flushed = true;
          boundary += kGemmKc;
        }
        // Quarter-vector loads combined in registers (two insert levels);
        // see conv_direct_block_pair for why a stack temporary would stall.
        VOut4 q0, q1, q2, q3;
        __builtin_memcpy(&q0, row0 + kj, sizeof q0);
        __builtin_memcpy(&q1, row1 + kj, sizeof q1);
        __builtin_memcpy(&q2, row2 + kj, sizeof q2);
        __builtin_memcpy(&q3, row3 + kj, sizeof q3);
        const VOut8 lo = __builtin_shufflevector(q0, q1, 0, 1, 2, 3, 4, 5, 6, 7);
        const VOut8 hi = __builtin_shufflevector(q2, q3, 0, 1, 2, 3, 4, 5, 6, 7);
        const V xv = __builtin_shufflevector(lo, hi, 0, 1, 2, 3, 4, 5, 6, 7,
                                             8, 9, 10, 11, 12, 13, 14, 15);
        const float* wk =
            WP ? wgt + static_cast<std::size_t>(k) * kConvOr : wgt + k;
        for (int i = 0; i < kConvOr; ++i)
          acc[i] += (WP ? wk[i] : wk[static_cast<std::size_t>(i) * K]) * xv;
      }
    }
  for (int i = 0; i < kConvOr; ++i) {
    const V v = flushed ? total[i] + acc[i] : acc[i];
    const float* vf = reinterpret_cast<const float*>(&v);
    float* dst = out + static_cast<std::int64_t>(i) * cols;
    for (int q = 0; q < 4; ++q)
      __builtin_memcpy(dst + static_cast<std::int64_t>(q) * wout,
                       vf + q * quarter, quarter * sizeof(float));
  }
}
#endif

/// One full output row (all O channels) from padded input row pointers.
/// `prows[c*kh + ki]` holds the input row oi+ki-pad shifted by the padding:
/// index j+kj reads input column j+kj-pad, zero outside the sample.
///
/// All row drivers take the raw filters in `wgt` plus the optional
/// conv_weight_pack transposed panel in `wp` (WP = true; full kConvOr
/// blocks only — scalar and remainder-channel paths always read `wgt`).
template <bool WP>
void conv_direct_row(const float* const* prows, const float* wgt,
                     const float* wp, int O, int K, int C, int kh, int kw,
                     int Wout, std::int64_t cols, float* yrow) {
  int o0 = 0;
#if NEURFILL_CONV_VECTOR_EXT
#if defined(__AVX512F__)
  constexpr bool kWide = true;  // 16-lane blocks are single zmm registers
#else
  constexpr bool kWide = false;
#endif
  for (; o0 + kConvOr <= O; o0 += kConvOr) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    const float* wob = WP ? wp + static_cast<std::size_t>(o0) * K : wo;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    int j = 0;
    if (kWide) {
      for (; j + 32 <= Wout; j += 32)
        conv_direct_block2<VOut16, WP>(prows, wob, K, C, kh, kw, j, cols,
                                       out + j);
      for (; j + 16 <= Wout; j += 16)
        conv_direct_block<VOut16, WP>(prows, wob, K, C, kh, kw, j, cols,
                                      out + j);
    } else {
      for (; j + 16 <= Wout; j += 16)
        conv_direct_block2<VOut8, WP>(prows, wob, K, C, kh, kw, j, cols,
                                      out + j);
    }
    for (; j + 8 <= Wout; j += 8)
      conv_direct_block<VOut8, WP>(prows, wob, K, C, kh, kw, j, cols, out + j);
    for (; j < Wout; ++j)
      for (int i = 0; i < kConvOr; ++i)
        out[static_cast<std::int64_t>(i) * cols + j] = conv_direct_one(
            prows, wo + static_cast<std::size_t>(i) * K, C, kh, kw, j);
  }
  for (; o0 < O; ++o0) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    int j = 0;
    if (kWide)
      for (; j + 16 <= Wout; j += 16)
        conv_direct_block1<VOut16>(prows, wo, C, kh, kw, j, out);
    for (; j + 8 <= Wout; j += 8)
      conv_direct_block1<VOut8>(prows, wo, C, kh, kw, j, out);
    for (; j < Wout; ++j)
      out[j] = conv_direct_one(prows, wo, C, kh, kw, j);
  }
#else
  for (; o0 < O; ++o0) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    for (int j = 0; j < Wout; ++j)
      out[j] = conv_direct_one(prows, wo, C, kh, kw, j);
  }
#endif
}

/// Whether the driver pairs adjacent output rows on narrow outputs (see
/// conv_direct_block_pair).  Worth it only where a 16-lane vector is one
/// register; on AVX2 the paired accumulators alone would overflow the
/// 16-register file and spill.
#if NEURFILL_CONV_VECTOR_EXT && defined(__AVX512F__)
constexpr bool kConvPairRows = true;
#else
constexpr bool kConvPairRows = false;
#endif

/// Two adjacent output rows oi (prows0) and oi+1 (prows1) at once, for
/// narrow outputs.  `yrow` addresses row oi of channel 0; row oi+1 of every
/// channel sits `wout` floats further into the same plane.
template <bool WP>
void conv_direct_row_pair(const float* const* prows0,
                          const float* const* prows1, const float* wgt,
                          const float* wp, int O, int K, int C, int kh,
                          int kw, int Wout, std::int64_t cols, float* yrow) {
#if NEURFILL_CONV_VECTOR_EXT
  int o0 = 0;
  for (; o0 + kConvOr <= O; o0 += kConvOr) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    const float* wob = WP ? wp + static_cast<std::size_t>(o0) * K : wo;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    int j = 0;
    for (; j + 8 <= Wout; j += 8)
      conv_direct_block_pair<WP>(prows0, prows1, wob, K, C, kh, kw, j,
                                 Wout, cols, out + j);
    for (; j < Wout; ++j)
      for (int i = 0; i < kConvOr; ++i) {
        float* dst = out + static_cast<std::int64_t>(i) * cols + j;
        const float* wi = wo + static_cast<std::size_t>(i) * K;
        dst[0] = conv_direct_one(prows0, wi, C, kh, kw, j);
        dst[Wout] = conv_direct_one(prows1, wi, C, kh, kw, j);
      }
  }
  for (; o0 < O; ++o0) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    for (int j = 0; j < Wout; ++j) {
      out[j] = conv_direct_one(prows0, wo, C, kh, kw, j);
      out[Wout + j] = conv_direct_one(prows1, wo, C, kh, kw, j);
    }
  }
#else
  conv_direct_row<WP>(prows0, wgt, wp, O, K, C, kh, kw, Wout, cols, yrow);
  conv_direct_row<WP>(prows1, wgt, wp, O, K, C, kh, kw, Wout, cols,
                      yrow + Wout);
#endif
}

/// Four adjacent output rows oi..oi+3 at once, for 4-wide outputs.  `yrow`
/// addresses row oi of channel 0; row oi+q of every channel sits q*wout
/// floats further into the same plane.
template <bool WP>
void conv_direct_row_quad(const float* const* prows0,
                          const float* const* prows1,
                          const float* const* prows2,
                          const float* const* prows3, const float* wgt,
                          const float* wp, int O, int K, int C, int kh,
                          int kw, int Wout, std::int64_t cols, float* yrow) {
#if NEURFILL_CONV_VECTOR_EXT
  int o0 = 0;
  for (; o0 + kConvOr <= O; o0 += kConvOr) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    const float* wob = WP ? wp + static_cast<std::size_t>(o0) * K : wo;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    int j = 0;
    for (; j + 4 <= Wout; j += 4)
      conv_direct_block_quad<WP>(prows0, prows1, prows2, prows3, wob, K, C,
                                 kh, kw, j, Wout, cols, out + j);
    for (; j < Wout; ++j)
      for (int i = 0; i < kConvOr; ++i) {
        float* dst = out + static_cast<std::int64_t>(i) * cols + j;
        const float* wi = wo + static_cast<std::size_t>(i) * K;
        dst[0] = conv_direct_one(prows0, wi, C, kh, kw, j);
        dst[Wout] = conv_direct_one(prows1, wi, C, kh, kw, j);
        dst[2 * Wout] = conv_direct_one(prows2, wi, C, kh, kw, j);
        dst[3 * Wout] = conv_direct_one(prows3, wi, C, kh, kw, j);
      }
  }
  for (; o0 < O; ++o0) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    for (int j = 0; j < Wout; ++j) {
      out[j] = conv_direct_one(prows0, wo, C, kh, kw, j);
      out[Wout + j] = conv_direct_one(prows1, wo, C, kh, kw, j);
      out[2 * Wout + j] = conv_direct_one(prows2, wo, C, kh, kw, j);
      out[3 * Wout + j] = conv_direct_one(prows3, wo, C, kh, kw, j);
    }
  }
#else
  conv_direct_row<WP>(prows0, wgt, wp, O, K, C, kh, kw, Wout, cols, yrow);
  conv_direct_row<WP>(prows1, wgt, wp, O, K, C, kh, kw, Wout, cols,
                      yrow + Wout);
  conv_direct_row<WP>(prows2, wgt, wp, O, K, C, kh, kw, Wout, cols,
                      yrow + 2 * Wout);
  conv_direct_row<WP>(prows3, wgt, wp, O, K, C, kh, kw, Wout, cols,
                      yrow + 3 * Wout);
#endif
}

/// Two adjacent output rows oi and oi+1 at once for 16-wide outputs: each
/// row is one full 16-lane block, the pair shares weight broadcasts
/// (conv_direct_block2_rows).
template <bool WP>
void conv_direct_row2_wide(const float* const* prows0,
                           const float* const* prows1, const float* wgt,
                           const float* wp, int O, int K, int C, int kh,
                           int kw, int Wout, std::int64_t cols, float* yrow) {
#if NEURFILL_CONV_VECTOR_EXT
  int o0 = 0;
  for (; o0 + kConvOr <= O; o0 += kConvOr) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    const float* wob = WP ? wp + static_cast<std::size_t>(o0) * K : wo;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    int j = 0;
    for (; j + 16 <= Wout; j += 16)
      conv_direct_block2_rows<VOut16, WP>(prows0, prows1, wob, K, C, kh, kw,
                                          j, Wout, cols, out + j);
    for (; j < Wout; ++j)
      for (int i = 0; i < kConvOr; ++i) {
        float* dst = out + static_cast<std::int64_t>(i) * cols + j;
        const float* wi = wo + static_cast<std::size_t>(i) * K;
        dst[0] = conv_direct_one(prows0, wi, C, kh, kw, j);
        dst[Wout] = conv_direct_one(prows1, wi, C, kh, kw, j);
      }
  }
  for (; o0 < O; ++o0) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    int j = 0;
    for (; j + 16 <= Wout; j += 16) {
      conv_direct_block1<VOut16>(prows0, wo, C, kh, kw, j, out);
      conv_direct_block1<VOut16>(prows1, wo, C, kh, kw, j, out + Wout);
    }
    for (; j < Wout; ++j) {
      out[j] = conv_direct_one(prows0, wo, C, kh, kw, j);
      out[Wout + j] = conv_direct_one(prows1, wo, C, kh, kw, j);
    }
  }
#else
  conv_direct_row<WP>(prows0, wgt, wp, O, K, C, kh, kw, Wout, cols, yrow);
  conv_direct_row<WP>(prows1, wgt, wp, O, K, C, kh, kw, Wout, cols,
                      yrow + Wout);
#endif
}

/// Four adjacent 8-wide output rows oi..oi+3 at once: two row-pair vectors
/// sharing weight broadcasts (conv_direct_block_pair2).
template <bool WP>
void conv_direct_row_quad8(const float* const* prows0,
                           const float* const* prows1,
                           const float* const* prows2,
                           const float* const* prows3, const float* wgt,
                           const float* wp, int O, int K, int C, int kh,
                           int kw, int Wout, std::int64_t cols, float* yrow) {
#if NEURFILL_CONV_VECTOR_EXT
  int o0 = 0;
  for (; o0 + kConvOr <= O; o0 += kConvOr) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    const float* wob = WP ? wp + static_cast<std::size_t>(o0) * K : wo;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    int j = 0;
    for (; j + 8 <= Wout; j += 8)
      conv_direct_block_pair2<WP>(prows0, prows1, prows2, prows3, wob, K, C,
                                  kh, kw, j, Wout, cols, out + j);
    for (; j < Wout; ++j)
      for (int i = 0; i < kConvOr; ++i) {
        float* dst = out + static_cast<std::int64_t>(i) * cols + j;
        const float* wi = wo + static_cast<std::size_t>(i) * K;
        dst[0] = conv_direct_one(prows0, wi, C, kh, kw, j);
        dst[Wout] = conv_direct_one(prows1, wi, C, kh, kw, j);
        dst[2 * Wout] = conv_direct_one(prows2, wi, C, kh, kw, j);
        dst[3 * Wout] = conv_direct_one(prows3, wi, C, kh, kw, j);
      }
  }
  for (; o0 < O; ++o0) {
    const float* wo = wgt + static_cast<std::size_t>(o0) * K;
    float* out = yrow + static_cast<std::int64_t>(o0) * cols;
    for (int j = 0; j < Wout; ++j) {
      out[j] = conv_direct_one(prows0, wo, C, kh, kw, j);
      out[Wout + j] = conv_direct_one(prows1, wo, C, kh, kw, j);
      out[2 * Wout + j] = conv_direct_one(prows2, wo, C, kh, kw, j);
      out[3 * Wout + j] = conv_direct_one(prows3, wo, C, kh, kw, j);
    }
  }
#else
  conv_direct_row_pair<WP>(prows0, prows1, wgt, wp, O, K, C, kh, kw, Wout,
                           cols, yrow);
  conv_direct_row_pair<WP>(prows2, prows3, wgt, wp, O, K, C, kh, kw, Wout,
                           cols, yrow + 2 * Wout);
#endif
}

/// Routes one row-group job to the row driver matching its geometry (see
/// the rpj selection in conv2d_gn_act_fwd_packed).  `ptrs` holds rpj
/// consecutive pointer tables of n_rows entries each.
template <bool WP>
void conv_direct_rows_dispatch(int rpj, int Wout, const float* const* ptrs,
                               std::size_t n_rows, const float* w,
                               const float* wp, int O, int K, int C, int kh,
                               int kw, std::int64_t cols, float* yrow) {
  if (rpj == 4 && Wout == 4)
    conv_direct_row_quad<WP>(ptrs, ptrs + n_rows, ptrs + 2 * n_rows,
                             ptrs + 3 * n_rows, w, wp, O, K, C, kh, kw, Wout,
                             cols, yrow);
  else if (rpj == 4)
    conv_direct_row_quad8<WP>(ptrs, ptrs + n_rows, ptrs + 2 * n_rows,
                              ptrs + 3 * n_rows, w, wp, O, K, C, kh, kw,
                              Wout, cols, yrow);
  else if (rpj == 2 && Wout == 16)
    conv_direct_row2_wide<WP>(ptrs, ptrs + n_rows, w, wp, O, K, C, kh, kw,
                              Wout, cols, yrow);
  else if (rpj == 2)
    conv_direct_row_pair<WP>(ptrs, ptrs + n_rows, w, wp, O, K, C, kh, kw,
                             Wout, cols, yrow);
  else
    conv_direct_row<WP>(ptrs, w, wp, O, K, C, kh, kw, Wout, cols, yrow);
}

inline float apply_act(ActKind act, float slope, float v) {
  switch (act) {
    case ActKind::kRelu:
      return v > 0.0f ? v : 0.0f;
    case ActKind::kLeakyRelu:
      return v > 0.0f ? v : slope * v;
    case ActKind::kNone:
      break;
  }
  return v;
}

template <typename F>
void map_unary(const float* x, float* y, std::int64_t n, F f) {
  runtime::parallel_for(elem_grain(n), static_cast<std::size_t>(n),
                        [=](std::size_t i0, std::size_t i1) {
                          for (std::size_t i = i0; i < i1; ++i) y[i] = f(x[i]);
                        });
}

template <typename F>
void map_binary(const float* a, const float* b, float* y, std::int64_t n,
                F f) {
  runtime::parallel_for(elem_grain(n), static_cast<std::size_t>(n),
                        [=](std::size_t i0, std::size_t i1) {
                          for (std::size_t i = i0; i < i1; ++i)
                            y[i] = f(a[i], b[i]);
                        });
}

}  // namespace

void CpuBackend::gemm(GemmKind kind, int M, int N, int K, const float* A,
                      const float* B, float* C, bool accumulate) {
  switch (kind) {
    case GemmKind::kNN:
      gemm_nn(M, N, K, A, B, C, accumulate);
      return;
    case GemmKind::kNT:
      gemm_nt(M, N, K, A, B, C, accumulate);
      return;
    case GemmKind::kTN:
      gemm_tn(M, N, K, A, B, C, accumulate);
      return;
  }
  NF_CHECK(false, "gemm: unknown kind %d", static_cast<int>(kind));
}

void CpuBackend::conv2d_fwd(const Conv2dGeom& g, const float* x,
                            const float* w, const float* bias, float* y) {
  NF_TRACE_SPAN("nn.conv2d");
  const int C = g.in_channels, H = g.height, W = g.width;
  const int O = g.out_channels, kh = g.kernel_h, kw = g.kernel_w;
  const int Hout = g.out_height, Wout = g.out_width;
  const int K = C * kh * kw;
  const int cols = Hout * Wout;
  check_unfold_geometry("conv2d_fwd", H, W, kh, kw, g.stride, g.padding, Hout,
                        Wout);
  const bool identity = identity_unfold(g);
  const std::size_t unfold_elems = static_cast<std::size_t>(K) * cols;
  // Small layers fork no jobs at all (see kSerialConvUnfoldElems above).
  // The threshold scales with the batch: a layer too small to be worth
  // forking per sample can still fill every core when the batch axis
  // multiplies the work (batched surrogate inference, training
  // minibatches).  Scheduling only — results are bitwise unchanged.
  std::optional<runtime::ThreadPool::SerialRegion> serial;
  if (unfold_elems * static_cast<std::size_t>(g.batch) <=
      kSerialConvUnfoldElems)
    serial.emplace();
  const std::size_t bias_grain = runtime::grain_for_cost(
      1.0 * static_cast<double>(cols), static_cast<std::size_t>(O));
  // Samples are independent (disjoint output planes), so the batch loop is
  // itself a parallel_for; each sample's per-element arithmetic is a pure
  // function of that sample, so the outer decomposition never changes
  // results.  Inner primitives degrade to inline blocks when the batch
  // level already forked (nested-parallelism rule, docs/runtime.md).  One
  // sample costs ~2*O*cols*K FLOPs at the packed kernel's ~10 FLOP/ns.
  const double sample_ns =
      2.0 * static_cast<double>(O) * static_cast<double>(cols) *
      static_cast<double>(K) / 10.0;
  runtime::parallel_for(
      runtime::grain_for_cost(sample_ns, static_cast<std::size_t>(g.batch)),
      static_cast<std::size_t>(g.batch), [=](std::size_t n0, std::size_t n1) {
        // Persistent unfold scratch: the (K, cols) im2col matrix is rebuilt
        // for every batch element of every conv in the network, so it lives
        // in a grow-only thread-local aligned buffer instead of a per-call
        // vector — zero allocations in steady state, and 64-byte alignment
        // feeds the packed GEMM full cache lines.  The identity unfold
        // (1x1, stride 1, no padding) skips the copy and streams the input
        // sample directly.
        static thread_local AlignedBuffer<float> tls_col;
        float* col = identity ? nullptr : tls_col.ensure(unfold_elems);
        for (std::size_t ns = n0; ns < n1; ++ns) {
          const int n = static_cast<int>(ns);
          const float* xn = x + static_cast<std::int64_t>(n) * C * H * W;
          const float* rhs = xn;
          if (!identity) {
            im2col(xn, C, H, W, kh, kw, g.stride, g.padding, Hout, Wout, col);
            rhs = col;
          }
          float* po = y + static_cast<std::int64_t>(n) * O * cols;
          gemm_nn(O, cols, K, w, rhs, po, false);
          if (bias) {
            runtime::parallel_for(
                bias_grain, static_cast<std::size_t>(O),
                [=](std::size_t o0, std::size_t o1) {
                  for (std::size_t o = o0; o < o1; ++o)
                    for (int i = 0; i < cols; ++i)
                      po[o * static_cast<std::size_t>(cols) + i] += bias[o];
                });
          }
        }
      });
}

void CpuBackend::conv2d_bwd(const Conv2dGeom& g, const float* x,
                            const float* w, const float* gy, float* gx,
                            float* gw, float* gb) {
  NF_TRACE_SPAN("nn.conv2d_backward");
  const int C = g.in_channels, H = g.height, W = g.width;
  const int O = g.out_channels, kh = g.kernel_h, kw = g.kernel_w;
  const int Hout = g.out_height, Wout = g.out_width;
  const int K = C * kh * kw;
  const int cols = Hout * Wout;
  check_unfold_geometry("conv2d_bwd", H, W, kh, kw, g.stride, g.padding, Hout,
                        Wout);
  NF_CHECK(!(gw || gx) || x != nullptr, "conv2d_bwd: null x");
  NF_CHECK(!gx || w != nullptr, "conv2d_bwd: null w with gx");
  const bool identity = identity_unfold(g);
  // Same persistent-scratch scheme as the forward pass; separate buffers
  // because dcol is consumed (col2im) while colbuf is still live for the
  // weight gradient.  The identity unfold needs neither: the weight
  // gradient streams the input directly and the input gradient accumulates
  // straight out of the GEMM (col2im is elementwise += there).
  static thread_local AlignedBuffer<float> tls_colbuf;
  static thread_local AlignedBuffer<float> tls_dcol;
  const std::size_t unfold_elems = static_cast<std::size_t>(K) * cols;
  float* colbuf =
      (!identity && (gw || gx)) ? tls_colbuf.ensure(unfold_elems) : nullptr;
  float* dcol = (!identity && gx) ? tls_dcol.ensure(unfold_elems) : nullptr;
  // Same serial threshold as the forward pass: the backward unfolds and
  // GEMMs are the same shapes, plus one col2im scatter.
  std::optional<runtime::ThreadPool::SerialRegion> serial;
  if (unfold_elems <= kSerialConvUnfoldElems) serial.emplace();
  const std::size_t gb_grain = runtime::grain_for_cost(
      1.0 * static_cast<double>(cols), static_cast<std::size_t>(O));
  for (int n = 0; n < g.batch; ++n) {
    const float* gout = gy + static_cast<std::int64_t>(n) * O * cols;
    const float* xn =
        x ? x + static_cast<std::int64_t>(n) * C * H * W : nullptr;
    // The unfolded input is recomputed rather than cached: it is the
    // largest intermediate and recomputation is one im2col pass.
    if (!identity && (gw || gx))
      im2col(xn, C, H, W, kh, kw, g.stride, g.padding, Hout, Wout, colbuf);
    const float* rhs = identity ? xn : colbuf;
    if (gw)  // dW += dOut (O,cols) * col^T (cols,K)
      gemm_nt(O, K, cols, gout, rhs, gw, true);
    if (gx) {
      float* gxn = gx + static_cast<std::int64_t>(n) * C * H * W;
      if (identity) {  // dX += W^T (K,O) * dOut (O,cols), no scatter needed
        gemm_tn(K, cols, O, w, gout, gxn, true);
      } else {  // dcol = W^T (K,O) * dOut (O,cols)
        gemm_tn(K, cols, O, w, gout, dcol, false);
        col2im(dcol, C, H, W, kh, kw, g.stride, g.padding, Hout, Wout, gxn);
      }
    }
    if (gb) {
      runtime::parallel_for(
          gb_grain, static_cast<std::size_t>(O),
          [=](std::size_t o0, std::size_t o1) {
            for (std::size_t o = o0; o < o1; ++o) {
              float acc = gb[o];
              for (int i = 0; i < cols; ++i)
                acc += gout[o * static_cast<std::size_t>(cols) + i];
              gb[o] = acc;
            }
          });
    }
  }
}

void CpuBackend::unary_map(UnaryKind op, float p, const float* x, float* y,
                           std::int64_t n) {
  switch (op) {
    case UnaryKind::kAddScalar:
      map_unary(x, y, n, [p](float v) { return v + p; });
      return;
    case UnaryKind::kMulScalar:
      map_unary(x, y, n, [p](float v) { return v * p; });
      return;
    case UnaryKind::kNeg:
      map_unary(x, y, n, [](float v) { return v * -1.0f; });
      return;
    case UnaryKind::kRelu:
      map_unary(x, y, n, [](float v) { return v > 0.0f ? v : 0.0f; });
      return;
    case UnaryKind::kLeakyRelu:
      map_unary(x, y, n, [p](float v) { return v > 0.0f ? v : p * v; });
      return;
    case UnaryKind::kSigmoid:
      map_unary(x, y, n, [](float v) {
        // Numerically stable logistic.
        return v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                         : std::exp(v) / (1.0f + std::exp(v));
      });
      return;
    case UnaryKind::kTanh:
      map_unary(x, y, n, [](float v) { return std::tanh(v); });
      return;
    case UnaryKind::kExp:
      map_unary(x, y, n, [](float v) { return std::exp(v); });
      return;
    case UnaryKind::kLog:
      map_unary(x, y, n, [](float v) { return std::log(v); });
      return;
    case UnaryKind::kAbs:
      map_unary(x, y, n, [](float v) { return std::fabs(v); });
      return;
    case UnaryKind::kSqrt:
      map_unary(x, y, n, [](float v) { return std::sqrt(v); });
      return;
    case UnaryKind::kSquare:
      map_unary(x, y, n, [](float v) { return v * v; });
      return;
    case UnaryKind::kSoftplus:
      map_unary(x, y, n, [p](float v) {
        const float z = p * v;
        // log(1+e^z)/eta, stable for large |z|.
        return z > 20.0f ? v
                         : (z < -20.0f ? std::exp(z) / p
                                       : std::log1p(std::exp(z)) / p);
      });
      return;
  }
  NF_CHECK(false, "unary_map: unknown op %d", static_cast<int>(op));
}

void CpuBackend::binary_map(BinaryKind op, const float* a, const float* b,
                            float* y, std::int64_t n) {
  switch (op) {
    case BinaryKind::kAdd:
      map_binary(a, b, y, n, [](float u, float v) { return u + v; });
      return;
    case BinaryKind::kSub:
      map_binary(a, b, y, n, [](float u, float v) { return u - v; });
      return;
    case BinaryKind::kMul:
      map_binary(a, b, y, n, [](float u, float v) { return u * v; });
      return;
    case BinaryKind::kDiv:
      map_binary(a, b, y, n, [](float u, float v) { return u / v; });
      return;
  }
  NF_CHECK(false, "binary_map: unknown op %d", static_cast<int>(op));
}

double CpuBackend::reduce_sum(const float* x, std::int64_t n) {
  // Deterministic blocked reduction: the per-block partials are combined in
  // block order, so the value is bitwise identical at every thread count.
  return runtime::parallel_reduce(
      elem_grain(n), static_cast<std::size_t>(n), 0.0,
      [=](std::size_t i0, std::size_t i1) {
        double s = 0.0;
        for (std::size_t i = i0; i < i1; ++i)
          s += static_cast<double>(x[i]);
        return s;
      },
      [](double a, double b) { return a + b; });
}

void CpuBackend::group_norm_fwd(const GroupNormGeom& g, const float* x,
                                const float* gamma, const float* beta,
                                float* y, double* mean_out, double* istd_out) {
  const int N = g.batch, C = g.channels, H = g.height, W = g.width;
  const int groups = g.groups;
  NF_CHECK(groups > 0 && C % groups == 0,
           "group_norm_fwd: C=%d not divisible by groups=%d", C, groups);
  const int cpg = C / groups;
  const std::int64_t gsize = static_cast<std::int64_t>(cpg) * H * W;
  for (int n = 0; n < N; ++n) {
    for (int gi = 0; gi < groups; ++gi) {
      const float* base =
          x + (static_cast<std::int64_t>(n) * C + gi * cpg) * H * W;
      double m = 0.0;
      for (std::int64_t i = 0; i < gsize; ++i)
        m += static_cast<double>(base[i]);
      m /= static_cast<double>(gsize);
      double v = 0.0;
      for (std::int64_t i = 0; i < gsize; ++i) {
        const double d = static_cast<double>(base[i]) - m;
        v += d * d;
      }
      v /= static_cast<double>(gsize);
      const double istd = 1.0 / std::sqrt(v + static_cast<double>(g.eps));
      if (mean_out) mean_out[n * groups + gi] = m;
      if (istd_out) istd_out[n * groups + gi] = istd;
      float* ob = y + (static_cast<std::int64_t>(n) * C + gi * cpg) * H * W;
      for (int c = 0; c < cpg; ++c) {
        const float gm = gamma[gi * cpg + c];
        const float bt = beta[gi * cpg + c];
        const float* sb = base + static_cast<std::int64_t>(c) * H * W;
        float* db = ob + static_cast<std::int64_t>(c) * H * W;
        for (int i = 0; i < H * W; ++i)
          db[i] =
              static_cast<float>((static_cast<double>(sb[i]) - m) * istd) *
                  gm +
              bt;
      }
    }
  }
}

void CpuBackend::maxpool2x2_fwd(std::int64_t planes, int height, int width,
                                const float* x, float* y,
                                std::int64_t* argmax) {
  const int H = height, W = width;
  NF_CHECK(H % 2 == 0 && W % 2 == 0, "maxpool2x2_fwd: odd extent %dx%d", H, W);
  const int Ho = H / 2, Wo = W / 2;
  std::int64_t o = 0;
  for (std::int64_t nc = 0; nc < planes; ++nc) {
    const float* plane = x + nc * H * W;
    for (int i = 0; i < Ho; ++i) {
      for (int j = 0; j < Wo; ++j) {
        const std::int64_t base = static_cast<std::int64_t>(2 * i) * W + 2 * j;
        std::int64_t best = base;
        float bv = plane[base];
        for (const std::int64_t cand : {base + 1, base + W, base + W + 1}) {
          if (plane[cand] > bv) {
            bv = plane[cand];
            best = cand;
          }
        }
        y[o] = bv;
        if (argmax) argmax[o] = nc * H * W + best;
        ++o;
      }
    }
  }
}

void CpuBackend::upsample2x_fwd(std::int64_t planes, int height, int width,
                                const float* x, float* y) {
  const int H = height, W = width;
  for (std::int64_t nc = 0; nc < planes; ++nc) {
    const float* sp = x + nc * H * W;
    float* dp = y + nc * 4 * H * W;
    for (int i = 0; i < H; ++i) {
      for (int j = 0; j < W; ++j) {
        const float v = sp[i * W + j];
        const std::int64_t b = static_cast<std::int64_t>(2 * i) * 2 * W + 2 * j;
        dp[b] = v;
        dp[b + 1] = v;
        dp[b + 2 * W] = v;
        dp[b + 2 * W + 1] = v;
      }
    }
  }
}

void CpuBackend::concat_channels_fwd(int batch, int channels_a, int channels_b,
                                     std::int64_t plane, const float* a,
                                     const float* b, float* y) {
  const std::int64_t Ca = channels_a, Cb = channels_b;
  for (int n = 0; n < batch; ++n) {
    std::copy(a + n * Ca * plane, a + (n + 1) * Ca * plane,
              y + n * (Ca + Cb) * plane);
    std::copy(b + n * Cb * plane, b + (n + 1) * Cb * plane,
              y + (n * (Ca + Cb) + Ca) * plane);
  }
}

/// Does the fused block take the packed-GEMM fallback for a single sample
/// (stride or an output too narrow for the direct kernel's vector blocks)?
/// 4-wide outputs with a multiple-of-4 height stay direct on 16-lane hosts
/// via quad row packing (conv_direct_block_quad).  The branch in
/// conv2d_gn_act_fwd_packed below consumes this predicate directly;
/// batch-independent by construction.
static bool fused_conv_uses_gemm(const Conv2dGeom& g) {
  if (g.stride != 1) return true;
  if (g.out_width >= 8) return false;
  return !(kConvPairRows && g.out_width == 4 && g.out_height % 4 == 0);
}

std::size_t CpuBackend::conv_weight_pack_floats(const Conv2dGeom& g) {
  // GEMM-fallback convs consume a gemm_pack_a A panel — per sample at
  // batch 1, as one whole-batch product at batch > 1.  Direct-kernel convs
  // consume the filters transposed to [k][o] in kConvOr-channel blocks:
  // the raw [o][k] layout makes every k-step touch kConvOr distinct cache
  // lines (one per output channel), which falls out of L1 as soon as
  // O * K * 4 bytes does — exactly the deep narrow stages; the transposed
  // panel puts each k's block of weights on one line.  Values and FMA
  // order are untouched, so the packed form is bitwise-neutral.  Only full
  // kConvOr blocks are packed; the remainder channels (the 1-channel head)
  // read the raw filters.
  const int K = g.in_channels * g.kernel_h * g.kernel_w;
  if (fused_conv_uses_gemm(g)) return gemm_packed_a_floats(g.out_channels, K);
  return static_cast<std::size_t>(g.out_channels - g.out_channels % kConvOr) *
         static_cast<std::size_t>(K);
}

void CpuBackend::conv_weight_pack(const Conv2dGeom& g, const float* w,
                                  float* dst) {
  const int O = g.out_channels;
  const int K = g.in_channels * g.kernel_h * g.kernel_w;
  if (fused_conv_uses_gemm(g)) {
    gemm_pack_a(w, O, K, dst);
    return;
  }
  for (int ob = 0; ob + kConvOr <= O; ob += kConvOr)
    for (int k = 0; k < K; ++k)
      for (int i = 0; i < kConvOr; ++i)
        *dst++ = w[static_cast<std::size_t>(ob + i) * K + k];
}

void CpuBackend::conv2d_gn_act_fwd(const Conv2dGeom& g, int groups, float eps,
                                   ActKind act, float slope, const float* x,
                                   const float* w, const float* bias,
                                   const float* gamma, const float* beta,
                                   float* y) {
  conv2d_gn_act_fwd_packed(g, groups, eps, act, slope, x, w, nullptr, bias,
                           gamma, beta, y);
}

void CpuBackend::conv2d_gn_act_fwd_packed(
    const Conv2dGeom& g, int groups, float eps, ActKind act, float slope,
    const float* x, const float* w, const float* packed_w, const float* bias,
    const float* gamma, const float* beta, float* y) {
  NF_TRACE_SPAN("nn.conv2d_fused");
  const int C = g.in_channels, H = g.height, W = g.width;
  const int O = g.out_channels, kh = g.kernel_h, kw = g.kernel_w;
  const int Hout = g.out_height, Wout = g.out_width;
  const int K = C * kh * kw;
  const int cols = Hout * Wout;
  check_unfold_geometry("conv2d_gn_act_fwd", H, W, kh, kw, g.stride, g.padding,
                        Hout, Wout);
  NF_CHECK(groups >= 0 && (groups == 0 || O % groups == 0),
           "conv2d_gn_act_fwd: O=%d not divisible by groups=%d", O, groups);
  NF_CHECK(groups == 0 || (gamma && beta),
           "conv2d_gn_act_fwd: normalization without gamma/beta");
  const std::size_t unfold_elems = static_cast<std::size_t>(K) * cols;
  // As in conv2d_fwd, the serial threshold scales with the batch so batched
  // inference forks even on layers too small to fork per sample.
  std::optional<runtime::ThreadPool::SerialRegion> serial;
  if (unfold_elems * static_cast<std::size_t>(g.batch) <=
      kSerialConvUnfoldElems)
    serial.emplace();

  bool epilogue_in_kernel = false;
  if (g.batch > 1 && fused_conv_uses_gemm(g)) {
    // Whole-batch fused GEMM: every sample's unfold columns concatenate
    // into one (K x batch*cols) right-hand side and the filters multiply
    // it in a single product.  The per-sample fallback at these narrow
    // outputs runs the micro-kernel on mostly-padding slivers (a 2x2 plane
    // fills 4 of 16 lanes) and pays the per-call GEMM setup per sample;
    // fusing the batch restores full-width slivers and amortizes every
    // per-call cost across B samples.  Bitwise: each output element's
    // accumulation chain in the wide GEMM is identical to its chain in the
    // per-sample product — the K-slab decomposition depends only on K, and
    // columns are independent accumulator lanes — so batch-B stays byte-
    // identical to B batch-1 runs (asserted by tests/test_inference.cpp).
    const int NB = g.batch * cols;
    // GEMM output is (O x batch*cols) — sample-minor — while y is
    // (batch x O x cols), so the product lands in scratch and a pure copy
    // fans the rows out per sample.
    static thread_local AlignedBuffer<float> tls_cbig;
    float* cbig = tls_cbig.ensure(static_cast<std::size_t>(O) * NB);
    const auto gather = [=](int s, float* dst) {
      pack_conv_sliver_batched(x, C, H, W, kh, kw, g.stride, g.padding, Hout,
                               Wout, g.batch, s, dst);
    };
    if (packed_w)
      gemm_prepacked_a(O, NB, K, packed_w, gather, cbig, false);
    else
      gemm_packed_b(O, NB, K, w, gather, cbig, false);
    const std::size_t out_rows = static_cast<std::size_t>(g.batch) * O;
    runtime::parallel_for(
        runtime::grain_for_cost(0.5 * cols, out_rows), out_rows,
        [=](std::size_t r0, std::size_t r1) {
          for (std::size_t r = r0; r < r1; ++r) {
            const std::size_t n = r / static_cast<std::size_t>(O);
            const std::size_t o = r % static_cast<std::size_t>(O);
            std::memcpy(y + r * cols,
                        cbig + o * static_cast<std::size_t>(NB) + n * cols,
                        sizeof(float) * static_cast<std::size_t>(cols));
          }
        });
  } else if (!fused_conv_uses_gemm(g)) {
    // The direct kernel's vector blocks need at least 8 output columns per
    // row (or 4 with quad row packing); below that every element falls to
    // the scalar path, whose serial FMA chain runs ~4x slower per product
    // than the GEMM (which flattens all Hout*Wout pixels into one
    // vectorizable axis).  Outputs narrower still — the deepest stages of
    // a small-window UNet — take the GEMM branch instead; the shared chain
    // contract keeps the two bitwise identical.
    // Direct convolution (see the block comment above conv_direct_one).
    // The zero-padded input plane is materialized ONCE per call (disjoint
    // row writes, any order — the pads are constants), then every output
    // row just indexes into it: the per-output-row jobs touch no scratch
    // beyond a small pointer table, and no input row is copied kh times
    // the way a per-row padding buffer would.  A padding-0 layer needs no
    // plane at all: the pointers alias the input rows directly (the fused
    // analogue of the identity-unfold im2col skip).  The job partition
    // never changes any element's chain, so the result is bitwise stable
    // at any thread count.
    const int P = g.padding;
    const int plane_h = H + 2 * P;
    const int prow_len = W + 2 * P;
    const std::size_t n_rows = static_cast<std::size_t>(C) * kh;
    const float* padded = nullptr;
    if (P > 0) {
      // Caller-thread grow-only scratch; pool jobs only ever read it.
      static thread_local AlignedBuffer<float> tls_padded;
      const std::size_t pad_rows =
          static_cast<std::size_t>(g.batch) * C * plane_h;
      float* pad = tls_padded.ensure(pad_rows * prow_len);
      runtime::parallel_for(
          runtime::grain_for_cost(0.5 * prow_len, pad_rows), pad_rows,
          [=](std::size_t r0, std::size_t r1) {
            for (std::size_t r = r0; r < r1; ++r) {
              const std::size_t nc = r / static_cast<std::size_t>(plane_h);
              const int ii =
                  static_cast<int>(r % static_cast<std::size_t>(plane_h)) - P;
              float* dst = pad + r * prow_len;
              if (ii < 0 || ii >= H) {
                std::memset(dst, 0, sizeof(float) * prow_len);
                continue;
              }
              for (int v = 0; v < P; ++v) dst[v] = 0.0f;
              std::memcpy(dst + P, x + (nc * H + ii) * W, sizeof(float) * W);
              for (int v = 0; v < P; ++v) dst[P + W + v] = 0.0f;
            }
          });
      padded = pad;
    }
    // Group adjacent rows per job so the block kernels can fill wide
    // vectors (4- and 8-wide outputs) and share weight broadcasts across
    // rows (8- and 16-wide); the grouping depends only on the geometry,
    // never the thread count.
    const bool quad = kConvPairRows && Wout == 4;  // gated by Hout % 4 above
    const bool quad8 = kConvPairRows && Wout == 8 && Hout % 4 == 0;
    const bool pair = kConvPairRows && Wout == 8 && Hout % 2 == 0;
    const bool pair16 = kConvPairRows && Wout == 16 && Hout % 2 == 0;
    const int rpj = quad || quad8 ? 4 : pair || pair16 ? 2 : 1;
    const int jobs_per_sample = Hout / rpj;
    const std::size_t jobs =
        static_cast<std::size_t>(g.batch) * jobs_per_sample;
    // ~10 sustained FLOP/ns for the register-blocked kernel.
    const double row_ns = 2.0 * static_cast<double>(O) * K *
                          static_cast<double>(Wout) * rpj / 10.0;
    // The in-kernel epilogue below folds bias+activation into the job that
    // produced the rows (L1-hot) — groups > 0 still needs the full-tensor
    // statistics pass, so normalized layers keep the standalone epilogue.
    const bool fold = groups == 0 && (bias != nullptr || act != ActKind::kNone);
    epilogue_in_kernel = fold;
    runtime::parallel_for(
        runtime::grain_for_cost(row_ns, jobs), jobs,
        [=](std::size_t r0, std::size_t r1) {
          static thread_local std::vector<const float*> tls_ptrs;
          tls_ptrs.resize(n_rows * static_cast<std::size_t>(rpj));
          const float** ptrs = tls_ptrs.data();
          for (std::size_t r = r0; r < r1; ++r) {
            const int n =
                static_cast<int>(r / static_cast<std::size_t>(jobs_per_sample));
            const int oi =
                static_cast<int>(r % static_cast<std::size_t>(jobs_per_sample)) *
                rpj;
            // Padded row oi+ki holds input row oi+ki-P (zeros outside); with
            // P == 0 the base aliases the sample and the formula is the same.
            const float* base =
                P > 0 ? padded + (static_cast<std::size_t>(n) * C * plane_h) *
                                     prow_len
                      : x + static_cast<std::int64_t>(n) * C * H * W;
            for (int set = 0; set < rpj; ++set)
              for (int c = 0; c < C; ++c)
                for (int ki = 0; ki < kh; ++ki)
                  ptrs[static_cast<std::size_t>(set) * n_rows +
                       static_cast<std::size_t>(c) * kh + ki] =
                      base + (static_cast<std::size_t>(c) * plane_h +
                              static_cast<std::size_t>(oi + ki + set)) *
                                 prow_len;
            float* yrow = y + static_cast<std::int64_t>(n) * O * cols +
                          static_cast<std::int64_t>(oi) * Wout;
            if (packed_w)
              conv_direct_rows_dispatch<true>(rpj, Wout, ptrs, n_rows, w,
                                              packed_w, O, K, C, kh, kw,
                                              cols, yrow);
            else
              conv_direct_rows_dispatch<false>(rpj, Wout, ptrs, n_rows, w,
                                               nullptr, O, K, C, kh, kw,
                                               cols, yrow);
            if (!fold) continue;
            // Bias + activation on the rows this job just wrote, exactly the
            // arithmetic of the standalone epilogue pass (bias add only when
            // a bias exists: adding 0.0f would flip the sign bit of -0.0).
            for (int o = 0; o < O; ++o) {
              float* row = yrow + static_cast<std::int64_t>(o) * cols;
              if (bias) {
                const float bv = bias[o];
                for (int i = 0; i < Wout * rpj; ++i)
                  row[i] = apply_act(act, slope, row[i] + bv);
              } else {
                for (int i = 0; i < Wout * rpj; ++i)
                  row[i] = apply_act(act, slope, row[i]);
              }
            }
          }
        });
  } else {
    // Strided and narrow-output layers fall back to the packed GEMM with
    // its right-hand side gathered straight from the input sample
    // (pack_conv_sliver) — no im2col buffer in this path either, and
    // bitwise identical to the direct kernel by the shared chain contract.
    // When the caller pre-packed the (constant) filters, the per-call A
    // packing disappears too: gemm_prepacked_a consumes the panel with the
    // identical decomposition, so the product is bitwise unchanged.  The
    // batch loop parallelizes over samples (disjoint outputs; per-sample
    // GEMM decomposition is batch-independent, so chains never change).
    const bool identity = identity_unfold(g);
    const double sample_ns =
        2.0 * static_cast<double>(O) * static_cast<double>(cols) *
        static_cast<double>(K) / 10.0;
    runtime::parallel_for(
        runtime::grain_for_cost(sample_ns, static_cast<std::size_t>(g.batch)),
        static_cast<std::size_t>(g.batch),
        [=](std::size_t n0, std::size_t n1) {
          for (std::size_t ns = n0; ns < n1; ++ns) {
            const int n = static_cast<int>(ns);
            const float* xn = x + static_cast<std::int64_t>(n) * C * H * W;
            float* yn = y + static_cast<std::int64_t>(n) * O * cols;
            if (packed_w) {
              gemm_prepacked_a(
                  O, cols, K, packed_w,
                  [=](int s, float* dst) {
                    pack_conv_sliver(xn, C, H, W, kh, kw, g.stride, g.padding,
                                     Hout, Wout, s, dst);
                  },
                  yn, false);
            } else if (identity) {
              gemm_nn(O, cols, K, w, xn, yn, false);
            } else {
              gemm_packed_b(
                  O, cols, K, w,
                  [=](int s, float* dst) {
                    pack_conv_sliver(xn, C, H, W, kh, kw, g.stride, g.padding,
                                     Hout, Wout, s, dst);
                  },
                  yn, false);
            }
          }
        });
  }

  // Epilogue.  Bias add, group statistics, normalization, and activation
  // reproduce the unfused kernels' arithmetic exactly: float bias add per
  // element, double mean/variance accumulated over the group in flat index
  // order, the same normalize-then-scale cast points, activation last.
  if (groups > 0) {
    const int cpg = O / groups;
    const std::int64_t gsize = static_cast<std::int64_t>(cpg) * cols;
    const std::size_t jobs = static_cast<std::size_t>(g.batch) * groups;
    // ~8 ns per group element across the bias/stats/normalize passes.
    runtime::parallel_for(
        runtime::grain_for_cost(8.0 * static_cast<double>(gsize), jobs), jobs,
        [=](std::size_t j0, std::size_t j1) {
          // One group's bias/stats/normalize, the unfused kernels'
          // arithmetic verbatim.
          const auto gn_one = [=](std::size_t job) {
            const int n = static_cast<int>(job) / groups;
            const int gi = static_cast<int>(job) % groups;
            float* base =
                y + (static_cast<std::int64_t>(n) * O + gi * cpg) * cols;
            double m = 0.0;
            if (bias) {
              // Bias lands with the same per-element float rounding as the
              // unfused bias pass; the mean accumulates the stored values
              // in the same flat order the unfused statistics walk.
              for (int c = 0; c < cpg; ++c) {
                const float bv = bias[gi * cpg + c];
                float* row = base + static_cast<std::int64_t>(c) * cols;
                for (int i = 0; i < cols; ++i) {
                  const float v = row[i] + bv;
                  row[i] = v;
                  m += static_cast<double>(v);
                }
              }
            } else {
              for (std::int64_t i = 0; i < gsize; ++i)
                m += static_cast<double>(base[i]);
            }
            m /= static_cast<double>(gsize);
            double var = 0.0;
            for (std::int64_t i = 0; i < gsize; ++i) {
              const double d = static_cast<double>(base[i]) - m;
              var += d * d;
            }
            var /= static_cast<double>(gsize);
            const double istd = 1.0 / std::sqrt(var + static_cast<double>(eps));
            for (int c = 0; c < cpg; ++c) {
              const float gm = gamma[gi * cpg + c];
              const float bt = beta[gi * cpg + c];
              float* row = base + static_cast<std::int64_t>(c) * cols;
              for (int i = 0; i < cols; ++i) {
                const float v =
                    static_cast<float>((static_cast<double>(row[i]) - m) *
                                       istd) *
                        gm +
                    bt;
                row[i] = apply_act(act, slope, v);
              }
            }
          };
          // Four group chains interleaved per step: each group's mean and
          // variance stay the exact serial double chains of the unfused
          // kernels (flat order, one accumulator per group), and the
          // independent chains hide the FP-add latency that makes a lone
          // chain ~3 ns per element.  No value ever crosses chains, so the
          // result is bitwise identical for any range partition and any
          // interleave width — the remainder jobs just run one at a time.
          constexpr int kIl = 4;
          std::size_t job = j0;
          for (; job + kIl <= j1; job += kIl) {
            float* bases[kIl];
            int gis[kIl];
            for (int b = 0; b < kIl; ++b) {
              const std::size_t jb = job + static_cast<std::size_t>(b);
              const int n = static_cast<int>(jb) / groups;
              gis[b] = static_cast<int>(jb) % groups;
              bases[b] =
                  y + (static_cast<std::int64_t>(n) * O + gis[b] * cpg) * cols;
            }
            double m[kIl] = {};
            if (bias) {
              for (int c = 0; c < cpg; ++c) {
                float bv[kIl];
                float* rows[kIl];
                for (int b = 0; b < kIl; ++b) {
                  bv[b] = bias[gis[b] * cpg + c];
                  rows[b] = bases[b] + static_cast<std::int64_t>(c) * cols;
                }
                for (int i = 0; i < cols; ++i)
                  for (int b = 0; b < kIl; ++b) {
                    const float v = rows[b][i] + bv[b];
                    rows[b][i] = v;
                    m[b] += static_cast<double>(v);
                  }
              }
            } else {
              for (std::int64_t i = 0; i < gsize; ++i)
                for (int b = 0; b < kIl; ++b)
                  m[b] += static_cast<double>(bases[b][i]);
            }
            for (int b = 0; b < kIl; ++b) m[b] /= static_cast<double>(gsize);
            double var[kIl] = {};
            for (std::int64_t i = 0; i < gsize; ++i)
              for (int b = 0; b < kIl; ++b) {
                const double d = static_cast<double>(bases[b][i]) - m[b];
                var[b] += d * d;
              }
            for (int b = 0; b < kIl; ++b) {
              var[b] /= static_cast<double>(gsize);
              const double istd =
                  1.0 / std::sqrt(var[b] + static_cast<double>(eps));
              for (int c = 0; c < cpg; ++c) {
                const float gm = gamma[gis[b] * cpg + c];
                const float bt = beta[gis[b] * cpg + c];
                float* row = bases[b] + static_cast<std::int64_t>(c) * cols;
                for (int i = 0; i < cols; ++i) {
                  const float v =
                      static_cast<float>((static_cast<double>(row[i]) - m[b]) *
                                         istd) *
                          gm +
                      bt;
                  row[i] = apply_act(act, slope, v);
                }
              }
            }
          }
          for (; job < j1; ++job) gn_one(job);
        });
  } else if (!epilogue_in_kernel && (bias || act != ActKind::kNone)) {
    const std::size_t rows = static_cast<std::size_t>(g.batch) * O;
    runtime::parallel_for(
        runtime::grain_for_cost(2.0 * static_cast<double>(cols), rows), rows,
        [=](std::size_t r0, std::size_t r1) {
          for (std::size_t r = r0; r < r1; ++r) {
            const int o = static_cast<int>(r % static_cast<std::size_t>(O));
            float* row = y + r * static_cast<std::size_t>(cols);
            if (bias) {
              const float bv = bias[o];
              for (int i = 0; i < cols; ++i)
                row[i] = apply_act(act, slope, row[i] + bv);
            } else {
              for (int i = 0; i < cols; ++i)
                row[i] = apply_act(act, slope, row[i]);
            }
          }
        });
  }
}

}  // namespace neurfill::nn
