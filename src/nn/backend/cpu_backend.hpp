#pragma once

#include "nn/backend/backend.hpp"

namespace neurfill::nn {

/// Reference CPU implementation of the Backend contract: the BLIS-style
/// packed GEMM (cpu_gemm.cpp), im2col convolution with the serial-region
/// small-layer scheduling, and the deterministic elementwise / reduction /
/// normalization kernels that used to live in ops_*.cpp.  All scratch is
/// grow-only and thread_local, so concurrent dispatch from different
/// threads is safe and steady-state calls allocate nothing.
///
/// The fused conv2d_gn_act_fwd block additionally packs the GEMM right-hand
/// side straight from the input tensor (gemm_internal.hpp), skipping the
/// im2col materialization entirely; its results stay bitwise identical to
/// the unfused kernel chain because the packed values and every
/// accumulation order are unchanged (docs/inference.md).
class CpuBackend final : public Backend {
 public:
  const char* name() const override { return "cpu"; }

  void gemm(GemmKind kind, int M, int N, int K, const float* A, const float* B,
            float* C, bool accumulate) override;
  void conv2d_fwd(const Conv2dGeom& g, const float* x, const float* w,
                  const float* bias, float* y) override;
  void conv2d_bwd(const Conv2dGeom& g, const float* x, const float* w,
                  const float* gy, float* gx, float* gw, float* gb) override;
  void unary_map(UnaryKind op, float p, const float* x, float* y,
                 std::int64_t n) override;
  void binary_map(BinaryKind op, const float* a, const float* b, float* y,
                  std::int64_t n) override;
  double reduce_sum(const float* x, std::int64_t n) override;
  void group_norm_fwd(const GroupNormGeom& g, const float* x,
                      const float* gamma, const float* beta, float* y,
                      double* mean_out, double* istd_out) override;
  void maxpool2x2_fwd(std::int64_t planes, int height, int width,
                      const float* x, float* y, std::int64_t* argmax) override;
  void upsample2x_fwd(std::int64_t planes, int height, int width,
                      const float* x, float* y) override;
  void concat_channels_fwd(int batch, int channels_a, int channels_b,
                           std::int64_t plane, const float* a, const float* b,
                           float* y) override;
  void conv2d_gn_act_fwd(const Conv2dGeom& g, int groups, float eps,
                         ActKind act, float slope, const float* x,
                         const float* w, const float* bias, const float* gamma,
                         const float* beta, float* y) override;
  std::size_t conv_weight_pack_floats(const Conv2dGeom& g) override;
  void conv_weight_pack(const Conv2dGeom& g, const float* w,
                        float* dst) override;
  void conv2d_gn_act_fwd_packed(const Conv2dGeom& g, int groups, float eps,
                                ActKind act, float slope, const float* x,
                                const float* w, const float* packed_w,
                                const float* bias, const float* gamma,
                                const float* beta, float* y) override;
};

}  // namespace neurfill::nn
