#include "nn/gemm.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "common/aligned.hpp"
#include "nn/backend/gemm_internal.hpp"
#include "common/check.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

// Cache-blocked, register-tiled GEMM (BLIS-style), shared by all three
// transpose variants.
//
// Decomposition:
//   * B is packed once per call into column slivers of kNr columns, each
//     sliver stored k-major and contiguous, zero-padded to kNr.  Packing
//     absorbs the transpose of the `nt` variant, so the inner kernel always
//     streams B unit-stride.
//   * The row dimension is cut into tiles of kMc rows.  For each K-slab of
//     kKc, a tile packs its slice of A into an Mr-interleaved panel (again
//     absorbing the `tn` transpose) and then walks B slivers, computing one
//     kMr x kNr register tile per (row sliver, column sliver) pair.
//   * The micro-kernel is plain C written so the compiler vectorizes the
//     kNr-wide j-loop into FMAs and keeps the kMr*kNr accumulator in
//     registers; there is no data-dependent branching in the hot loop.
//
// Determinism: the tile/slab/sliver decomposition is a pure function of
// (M, N, K) — never of the thread count — and each C element is written by
// exactly one parallel block (the one owning its row tile and column
// chunk) across every K-slab, with K-slabs processed in ascending order by
// that owner.  Every C element therefore accumulates its products in the
// same fixed order at any thread count, making results bitwise identical
// from 1 thread to N (asserted by tests/test_runtime.cpp).  Within one
// element the order is: slab partials in ascending k-slab order, each
// partial summed over ascending k.
//
// Parallel grain: blocks are (row tile, column chunk) pairs; the grain is
// derived from the per-block FLOP count via runtime::grain_for_cost with
// the sustained kernel throughput measured by bench/bench_runtime_scaling,
// so small products run inline and large ones split into ~25 us blocks.

namespace neurfill::nn {

namespace {

// Micro/cache tile sizes.  kMr x kNr is the register tile: kNr floats span
// two 8-wide (or one 16-wide) FMA vector, and kMr = 6 rows leave enough
// vector registers for the B row and the broadcast of A even on 16-register
// AVX2.  kKc sizes the packed panels: a B sliver slab (kKc * kNr floats)
// stays resident in L1 while kMc/kMr row slivers stream over it, and an A
// tile panel (kMc * kKc floats, ~96 KiB) stays in L2.
constexpr int kMr = 6;
constexpr int kNr = 16;
constexpr int kKc = 256;
static_assert(kKc == kGemmKc,
              "gemm_internal.hpp advertises the K-slab depth to the direct "
              "convolution kernel");
constexpr int kMc = 96;
static_assert(kMc % kMr == 0, "row tiles must hold whole A slivers");
static_assert(kNr == kGemmNr,
              "gemm_internal.hpp advertises the packed sliver width");

/// Sustained packed-kernel throughput in FLOP/ns, measured single-threaded
/// by bench_runtime_scaling on the baseline machine; used only to convert
/// tile FLOPs into block cost for grain derivation.
constexpr double kKernelFlopsPerNs = 15.0;

/// ~cost of packing one element (strided load + contiguous store), ns.
constexpr double kPackNsPerElem = 0.5;

/// Shared precondition for every kernel: non-negative dimensions and, when
/// the product is non-empty, live buffers to stream through.
void check_gemm_args(const char* name, int M, int N, int K, const float* A,
                     const float* B, const float* C) {
  NF_CHECK(M >= 0 && N >= 0 && K >= 0, "%s: negative dimension M=%d N=%d K=%d",
           name, M, N, K);
  if (M > 0 && N > 0) {
    NF_CHECK(C != nullptr, "%s: null C with M=%d N=%d", name, M, N);
    if (K > 0)
      NF_CHECK(A != nullptr && B != nullptr, "%s: null input operand", name);
  }
}

/// Multiply-add count of one product, for the nn.gemm_flops counter.
/// Unused when the tracing macros are compiled out.
[[maybe_unused]] std::int64_t gemm_flops(int M, int N, int K) {
  return std::int64_t{2} * M * N * K;
}

constexpr int ceil_div(int a, int b) { return (a + b - 1) / b; }

/// Is the A operand stored (M x K) row-major, or (K x M) with the kernel
/// consuming its transpose?  Same question for B with (K x N) vs (N x K).
enum class Op { kNone, kTrans };

/// Packs column sliver `s` of the (logical K x N) operand B into `dst`:
/// K rows of kNr floats each, zero-padded past column N.
void pack_b_sliver(Op op, const float* b, int K, int N, int s, float* dst) {
  const int j0 = s * kNr;
  const int nr = std::min(kNr, N - j0);
  if (op == Op::kNone) {  // B is (K x N) row-major: contiguous row chunks
    for (int k = 0; k < K; ++k) {
      const float* src = b + static_cast<std::size_t>(k) * N + j0;
      float* row = dst + static_cast<std::size_t>(k) * kNr;
      for (int jj = 0; jj < nr; ++jj) row[jj] = src[jj];
      for (int jj = nr; jj < kNr; ++jj) row[jj] = 0.0f;
    }
  } else {  // B is (N x K): gather one column of it per packed lane
    for (int k = 0; k < K; ++k) {
      float* row = dst + static_cast<std::size_t>(k) * kNr;
      for (int jj = 0; jj < nr; ++jj)
        row[jj] = b[static_cast<std::size_t>(j0 + jj) * K + k];
      for (int jj = nr; jj < kNr; ++jj) row[jj] = 0.0f;
    }
  }
}

/// Packs `mr` rows of the (logical M x K) operand A, rows [i0, i0+mr),
/// K-slab [k0, k0+kc), into an Mr-interleaved panel: kc groups of kMr
/// floats, zero-padded past row mr.
void pack_a_sliver(Op op, const float* a, int M, int K, int i0, int mr,
                   int k0, int kc, float* dst) {
  if (op == Op::kNone) {  // A is (M x K) row-major
    for (int k = 0; k < kc; ++k) {
      float* group = dst + static_cast<std::size_t>(k) * kMr;
      for (int ii = 0; ii < mr; ++ii)
        group[ii] = a[static_cast<std::size_t>(i0 + ii) * K + (k0 + k)];
      for (int ii = mr; ii < kMr; ++ii) group[ii] = 0.0f;
    }
  } else {  // A is (K x M): each k group is a contiguous run of M-storage
    for (int k = 0; k < kc; ++k) {
      const float* src = a + static_cast<std::size_t>(k0 + k) * M + i0;
      float* group = dst + static_cast<std::size_t>(k) * kMr;
      for (int ii = 0; ii < mr; ++ii) group[ii] = src[ii];
      for (int ii = mr; ii < kMr; ++ii) group[ii] = 0.0f;
    }
  }
  (void)K;
}

/// Register-tile kernel: acc(kMr x kNr) = sum over kc of a-group outer
/// b-row, then stored into (or added to) the mr x nr live corner of C.
/// `ap`/`bp` are packed panels, fully padded, so the loop nest is branch
/// free.  The kNr-wide rows are expressed with GCC/Clang vector extensions
/// (one 64-byte vector per accumulator row) rather than left to the
/// auto-vectorizer, which keeps the kMr accumulators in vector registers
/// and lowers `a * b` to broadcast FMAs on every ISA width (1 zmm, 2 ymm,
/// or 4 xmm per row).  Vector semantics are lane-wise, so the per-element
/// sum order — and with it the bitwise result — is identical to the scalar
/// fallback's ascending-k chain.
#if defined(__GNUC__) || defined(__clang__)
#define NEURFILL_GEMM_VECTOR_EXT 1
typedef float VNr __attribute__((vector_size(kNr * sizeof(float))));
#endif

void micro_kernel(int kc, const float* __restrict__ ap,
                  const float* __restrict__ bp, float* __restrict__ c,
                  int ldc, int mr, int nr, bool overwrite) {
  float acc[kMr * kNr] = {};
#if NEURFILL_GEMM_VECTOR_EXT
  {
    VNr vacc[kMr] = {};
    for (int k = 0; k < kc; ++k) {
      VNr b;
      __builtin_memcpy(&b, bp + static_cast<std::size_t>(k) * kNr, sizeof b);
      const float* __restrict__ a = ap + static_cast<std::size_t>(k) * kMr;
      for (int i = 0; i < kMr; ++i) vacc[i] += a[i] * b;
    }
    __builtin_memcpy(acc, vacc, sizeof vacc);
  }
#else
  for (int k = 0; k < kc; ++k) {
    const float* __restrict__ b = bp + static_cast<std::size_t>(k) * kNr;
    const float* __restrict__ a = ap + static_cast<std::size_t>(k) * kMr;
    for (int i = 0; i < kMr; ++i) {
      const float av = a[i];
      float* __restrict__ acci = acc + static_cast<std::size_t>(i) * kNr;
      for (int j = 0; j < kNr; ++j) acci[j] += av * b[j];
    }
  }
#endif
  if (mr == kMr && nr == kNr) {  // full tile: vectorizable writeback
    if (overwrite) {
      for (int i = 0; i < kMr; ++i)
        for (int j = 0; j < kNr; ++j)
          c[static_cast<std::size_t>(i) * ldc + j] =
              acc[static_cast<std::size_t>(i) * kNr + j];
    } else {
      for (int i = 0; i < kMr; ++i)
        for (int j = 0; j < kNr; ++j)
          c[static_cast<std::size_t>(i) * ldc + j] +=
              acc[static_cast<std::size_t>(i) * kNr + j];
    }
  } else {  // edge tile: only the live corner exists in C
    for (int i = 0; i < mr; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      const float* arow = acc + static_cast<std::size_t>(i) * kNr;
      if (overwrite) {
        for (int j = 0; j < nr; ++j) crow[j] = arow[j];
      } else {
        for (int j = 0; j < nr; ++j) crow[j] += arow[j];
      }
    }
  }
}

/// Offset of row tile `t`'s panel inside a gemm_pack_a buffer.  Tiles
/// before `t` are all full (kMc rows, kMc/kMr slivers) and contribute
/// t_slivers * K * kMr floats each; within a tile, slab k0's block starts
/// after its t_slivers * k0 * kMr predecessor floats (all earlier slabs are
/// kKc deep).
std::size_t packed_a_tile_offset(int t, int K) {
  return static_cast<std::size_t>(t) * (kMc / kMr) * K * kMr;
}

/// The driver proper, generic over how B slivers are produced: the three
/// public transpose variants pack from a materialized B, gemm_packed_b
/// forwards a caller gather.  Everything after packing is identical, so all
/// entries share one decomposition and one bitwise-determinism argument.
/// When `prepacked_a` is non-null it holds the gemm_pack_a panel for A and
/// the in-loop A packing is skipped (A itself may then be null).
template <typename PackB>
void gemm_driver_impl(int M, int N, int K, const float* A,
                      const PackB& pack_b_fn, float* C, bool accumulate,
                      Op aop, const float* prepacked_a = nullptr) {
  NF_TRACE_SPAN("nn.gemm");
  NF_COUNTER_ADD("nn.gemm_flops", gemm_flops(M, N, K));
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    if (!accumulate)
      std::memset(C, 0,
                  sizeof(float) * static_cast<std::size_t>(M) *
                      static_cast<std::size_t>(N));
    return;
  }

  // Pack B once per call.  The buffer is thread_local: it belongs to this
  // invocation on the calling thread (grow-only, so steady-state GEMM does
  // no allocation at all); pool workers write disjoint slivers of it during
  // the packing job below, and the pool's join orders those writes before
  // the compute job reads them.
  const int n_slivers = ceil_div(N, kNr);
  static thread_local AlignedBuffer<float> tls_bp;
  float* bp = tls_bp.ensure(static_cast<std::size_t>(n_slivers) * K * kNr);
  {
    const double sliver_ns = kPackNsPerElem * K * kNr;
    runtime::parallel_for(
        runtime::grain_for_cost(sliver_ns, static_cast<std::size_t>(n_slivers)),
        static_cast<std::size_t>(n_slivers),
        [&](std::size_t s0, std::size_t s1) {
          for (std::size_t s = s0; s < s1; ++s)
            pack_b_fn(static_cast<int>(s),
                      bp + s * static_cast<std::size_t>(K) * kNr);
        });
  }

  // Parallel blocks are (row tile, column chunk) pairs.  The column split
  // matters for the skinny prepacked products the inference path produces
  // (M = output channels, a handful of row slivers; N = batch x pixels,
  // thousands of columns): row tiles alone would leave one block and zero
  // scaling.  It is gated on prepacked_a because for the materialized-A
  // paths row tiles already occupy the pool, and the finer jobs plus the
  // per-chunk A re-pack measurably cost the mid-size autograd GEMMs at 4
  // threads (bench_runtime_scaling conv2d_fwd_speedup_4t).  Each C element
  // is still written by exactly one block — the one owning its (tile,
  // chunk) — across every K-slab, slabs in ascending order, so the
  // per-element accumulation chain is untouched by the extra split (a pure
  // function of (M, N, K) and the packing mode, never of the thread
  // count).
  const int m_tiles = ceil_div(M, kMc);
  constexpr int kNChunkSlivers = 16;  // 256 columns per chunk
  const int chunk_slivers = prepacked_a ? kNChunkSlivers : n_slivers;
  const int n_chunks = ceil_div(n_slivers, chunk_slivers);
  const std::size_t jobs =
      static_cast<std::size_t>(m_tiles) * static_cast<std::size_t>(n_chunks);
  const double job_ns = 2.0 * std::min(M, kMc) *
                        static_cast<double>(std::min(N, chunk_slivers * kNr)) *
                        static_cast<double>(K) / kKernelFlopsPerNs;
  runtime::parallel_for(
      runtime::grain_for_cost(job_ns, jobs), jobs,
      [=](std::size_t j0, std::size_t j1) {
        // Per-thread A panel scratch (kMc x kKc floats, ~96 KiB), reused
        // across every tile and every call this thread ever runs.
        static thread_local AlignedBuffer<float> tls_ap;
        float* scratch_ap =
            prepacked_a ? nullptr
                        : tls_ap.ensure(static_cast<std::size_t>(kMc) * kKc);
        for (std::size_t j = j0; j < j1; ++j) {
          const std::size_t t = j / static_cast<std::size_t>(n_chunks);
          const int js0 = static_cast<int>(j % static_cast<std::size_t>(
                                                   n_chunks)) *
                          chunk_slivers;
          const int js1 = std::min(n_slivers, js0 + chunk_slivers);
          const int i0 = static_cast<int>(t) * kMc;
          const int tile_rows = std::min(kMc, M - i0);
          const int t_slivers = ceil_div(tile_rows, kMr);
          for (int k0 = 0; k0 < K; k0 += kKc) {
            const int kc = std::min(kKc, K - k0);
            const bool overwrite = (k0 == 0) && !accumulate;
            const float* ap;
            if (prepacked_a) {
              ap = prepacked_a + packed_a_tile_offset(static_cast<int>(t), K) +
                   static_cast<std::size_t>(t_slivers) * k0 * kMr;
            } else {
              for (int is = 0; is < t_slivers; ++is)
                pack_a_sliver(aop, A, M, K, i0 + is * kMr,
                              std::min(kMr, tile_rows - is * kMr), k0, kc,
                              scratch_ap + static_cast<std::size_t>(is) * kc *
                                               kMr);
              ap = scratch_ap;
            }
            for (int js = js0; js < js1; ++js) {
              const float* bps =
                  bp + (static_cast<std::size_t>(js) * K + k0) * kNr;
              const int nr = std::min(kNr, N - js * kNr);
              for (int is = 0; is < t_slivers; ++is) {
                const int mr = std::min(kMr, tile_rows - is * kMr);
                micro_kernel(kc,
                             ap + static_cast<std::size_t>(is) * kc * kMr, bps,
                             C +
                                 static_cast<std::size_t>(i0 + is * kMr) * N +
                                 static_cast<std::size_t>(js) * kNr,
                             N, mr, nr, overwrite);
              }
            }
          }
        }
      });
}

void gemm_driver(const char* name, Op aop, Op bop, int M, int N, int K,
                 const float* A, const float* B, float* C, bool accumulate) {
  check_gemm_args(name, M, N, K, A, B, C);
  gemm_driver_impl(
      M, N, K, A,
      [&](int s, float* dst) { pack_b_sliver(bop, B, K, N, s, dst); }, C,
      accumulate, aop);
}

}  // namespace

void gemm_packed_b(int M, int N, int K, const float* A,
                   const GemmPackBFn& pack_b, float* C, bool accumulate) {
  NF_CHECK(M >= 0 && N >= 0 && K >= 0,
           "gemm_packed_b: negative dimension M=%d N=%d K=%d", M, N, K);
  if (M > 0 && N > 0) {
    NF_CHECK(C != nullptr, "gemm_packed_b: null C with M=%d N=%d", M, N);
    if (K > 0)
      NF_CHECK(A != nullptr && pack_b != nullptr,
               "gemm_packed_b: null input operand");
  }
  gemm_driver_impl(M, N, K, A, pack_b, C, accumulate, Op::kNone);
}

std::size_t gemm_packed_a_floats(int M, int K) {
  NF_CHECK(M >= 0 && K >= 0, "gemm_packed_a_floats: negative dimension M=%d K=%d",
           M, K);
  std::size_t slivers = 0;
  for (int i0 = 0; i0 < M; i0 += kMc)
    slivers += static_cast<std::size_t>(ceil_div(std::min(kMc, M - i0), kMr));
  return slivers * static_cast<std::size_t>(K) * kMr;
}

void gemm_pack_a(const float* A, int M, int K, float* dst) {
  NF_CHECK(M >= 0 && K >= 0, "gemm_pack_a: negative dimension M=%d K=%d", M, K);
  if (M <= 0 || K <= 0) return;
  NF_CHECK(A != nullptr && dst != nullptr, "gemm_pack_a: null operand");
  // Serial: runs once per constant operand (session compile), not per GEMM.
  const int m_tiles = ceil_div(M, kMc);
  for (int t = 0; t < m_tiles; ++t) {
    const int i0 = t * kMc;
    const int tile_rows = std::min(kMc, M - i0);
    const int t_slivers = ceil_div(tile_rows, kMr);
    float* tile_dst = dst + packed_a_tile_offset(t, K);
    for (int k0 = 0; k0 < K; k0 += kKc) {
      const int kc = std::min(kKc, K - k0);
      float* slab_dst = tile_dst + static_cast<std::size_t>(t_slivers) * k0 * kMr;
      for (int is = 0; is < t_slivers; ++is)
        pack_a_sliver(Op::kNone, A, M, K, i0 + is * kMr,
                      std::min(kMr, tile_rows - is * kMr), k0, kc,
                      slab_dst + static_cast<std::size_t>(is) * kc * kMr);
    }
  }
}

void gemm_prepacked_a(int M, int N, int K, const float* packed_a,
                      const GemmPackBFn& pack_b, float* C, bool accumulate) {
  NF_CHECK(M >= 0 && N >= 0 && K >= 0,
           "gemm_prepacked_a: negative dimension M=%d N=%d K=%d", M, N, K);
  if (M > 0 && N > 0) {
    NF_CHECK(C != nullptr, "gemm_prepacked_a: null C with M=%d N=%d", M, N);
    if (K > 0)
      NF_CHECK(packed_a != nullptr && pack_b != nullptr,
               "gemm_prepacked_a: null input operand");
  }
  gemm_driver_impl(M, N, K, static_cast<const float*>(nullptr), pack_b, C,
                   accumulate, Op::kNone, packed_a);
}

void gemm_nn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate) {
  gemm_driver("gemm_nn", Op::kNone, Op::kNone, M, N, K, A, B, C, accumulate);
}

void gemm_nt(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate) {
  gemm_driver("gemm_nt", Op::kNone, Op::kTrans, M, N, K, A, B, C, accumulate);
}

void gemm_tn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate) {
  gemm_driver("gemm_tn", Op::kTrans, Op::kNone, M, N, K, A, B, C, accumulate);
}

}  // namespace neurfill::nn
