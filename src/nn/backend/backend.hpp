#pragma once

#include <cstddef>
#include <cstdint>

// The compute-backend seam of src/nn (docs/inference.md).  Every primitive
// kernel the tensor ops and the inference engine need — GEMM, convolution,
// elementwise maps, the deterministic reduction, group norm, pooling,
// upsampling, concatenation, and the fused inference block — is a virtual
// on `Backend`.  `ops_*.cpp` (the autograd layer) and `src/nn/infer` (the
// tape-free fast path) dispatch through `backend()` instead of calling
// kernels directly, so a GPU or quantized implementation slots in without
// touching either layer.
//
// Contract, binding for every implementation:
//   * Determinism: each kernel's result is bitwise identical at any thread
//     count, and identical across repeated calls with the same inputs.
//     Work decomposition must be a pure function of the problem shape.
//   * Synchronous: kernels return only after the output is fully written.
//   * Thread-safe: concurrent calls from different threads on disjoint
//     outputs must be safe (per-thread scratch, no shared mutable state).
//   * Aliasing: unless a parameter is documented in-place, output buffers
//     must not overlap inputs.
//   * Rounding: CpuBackend is the reference; docs/inference.md pins the
//     accumulation orders (float elementwise, blocked-double reductions,
//     double group statistics) that alternative backends must reproduce to
//     claim bitwise parity, or else document their tolerance.

namespace neurfill::nn {

/// Which operands of C = A·B the kernel consumes transposed (row-major
/// storage throughout): kNN is A(MxK)·B(KxN), kNT is A(MxK)·B(NxK)^T, kTN
/// is A(KxM)^T·B(KxN).
enum class GemmKind { kNN, kNT, kTN };

/// Elementwise unary maps.  `p` below is the op parameter: the addend for
/// kAddScalar, the factor for kMulScalar, the negative-side slope for
/// kLeakyRelu, the sharpness eta for kSoftplus; ignored otherwise.
enum class UnaryKind {
  kAddScalar,
  kMulScalar,
  kNeg,
  kRelu,
  kLeakyRelu,
  kSigmoid,
  kTanh,
  kExp,
  kLog,
  kAbs,
  kSqrt,
  kSquare,
  kSoftplus,
};

/// Elementwise binary maps over same-length buffers.
enum class BinaryKind { kAdd, kSub, kMul, kDiv };

/// Activation applied by the fused inference block (conv2d_gn_act_fwd).
enum class ActKind { kNone, kRelu, kLeakyRelu };

/// Geometry of one 2-D convolution: input [N, C, H, W], filters
/// [O, C, kh, kw], square stride/zero-padding, output [N, O, Hout, Wout].
struct Conv2dGeom {
  int batch = 1;
  int in_channels = 0;
  int height = 0;
  int width = 0;
  int out_channels = 0;
  int kernel_h = 0;
  int kernel_w = 0;
  int stride = 1;
  int padding = 0;
  int out_height = 0;
  int out_width = 0;
};

/// Geometry of group normalization over [N, C, H, W] with C % groups == 0.
struct GroupNormGeom {
  int batch = 0;
  int channels = 0;
  int height = 0;
  int width = 0;
  int groups = 1;
  float eps = 1e-5f;
};

/// Abstract compute backend.  One long-lived instance is active at a time
/// (see backend()/set_backend()); implementations own their scratch.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Human-readable implementation name ("cpu").
  virtual const char* name() const = 0;

  /// C (MxN) = A·B per `kind`; `accumulate=true` adds into C instead of
  /// overwriting.  Bitwise deterministic at any thread count.
  virtual void gemm(GemmKind kind, int M, int N, int K, const float* A,
                    const float* B, float* C, bool accumulate) = 0;

  /// y = conv2d(x, w) + bias.  `bias` may be null (no bias add).  y is
  /// overwritten.
  virtual void conv2d_fwd(const Conv2dGeom& g, const float* x, const float* w,
                          const float* bias, float* y) = 0;

  /// Backward of conv2d_fwd: accumulates (never overwrites) the gradients
  /// of any non-null output.  `gx` needs `w`; `gw` needs `x`; pass null for
  /// gradients not required.
  virtual void conv2d_bwd(const Conv2dGeom& g, const float* x, const float* w,
                          const float* gy, float* gx, float* gw,
                          float* gb) = 0;

  /// y[i] = f(x[i]) over n contiguous elements; `p` as documented on
  /// UnaryKind.  In-place (y == x) is allowed.
  virtual void unary_map(UnaryKind op, float p, const float* x, float* y,
                         std::int64_t n) = 0;

  /// y[i] = f(a[i], b[i]) over n contiguous elements.  In-place with either
  /// operand is allowed.
  virtual void binary_map(BinaryKind op, const float* a, const float* b,
                          float* y, std::int64_t n) = 0;

  /// Deterministic blocked sum: float inputs accumulated in double within
  /// fixed-shape blocks, block partials summed in index order.  The result
  /// is bitwise identical at any thread count (docs/runtime.md).
  virtual double reduce_sum(const float* x, std::int64_t n) = 0;

  /// y = gamma * (x - mean) / sqrt(var + eps) + beta per (sample, group),
  /// statistics in double over the group in flat index order.  When
  /// `mean_out`/`istd_out` are non-null they receive the per-(n,group)
  /// mean and inverse standard deviation (batch*groups entries each) for
  /// the autograd backward.
  virtual void group_norm_fwd(const GroupNormGeom& g, const float* x,
                              const float* gamma, const float* beta, float* y,
                              double* mean_out, double* istd_out) = 0;

  /// 2x2/stride-2 max pool over `planes` independent HxW planes (H, W
  /// even).  When `argmax` is non-null it receives, per output element, the
  /// flat input index of the selected maximum (ties resolved to the
  /// earliest index — fixed order, deterministic).
  virtual void maxpool2x2_fwd(std::int64_t planes, int height, int width,
                              const float* x, float* y,
                              std::int64_t* argmax) = 0;

  /// Nearest-neighbour 2x upsample over `planes` independent HxW planes.
  virtual void upsample2x_fwd(std::int64_t planes, int height, int width,
                              const float* x, float* y) = 0;

  /// y[n] = concat(a[n], b[n]) along channels: a is [N, Ca, plane], b is
  /// [N, Cb, plane], y is [N, Ca+Cb, plane] with `plane` = H*W.
  virtual void concat_channels_fwd(int batch, int channels_a, int channels_b,
                                   std::int64_t plane, const float* a,
                                   const float* b, float* y) = 0;

  /// Fused inference block: y = act(group_norm(conv2d(x, w) + bias)).
  /// `groups == 0` skips normalization (gamma/beta/eps ignored); `bias` may
  /// be null.  Bitwise identical to the unfused conv2d_fwd →
  /// group_norm_fwd → unary_map chain (pinned by tests/test_inference.cpp)
  /// while skipping the intermediate materializations.
  virtual void conv2d_gn_act_fwd(const Conv2dGeom& g, int groups, float eps,
                                 ActKind act, float slope, const float* x,
                                 const float* w, const float* bias,
                                 const float* gamma, const float* beta,
                                 float* y) = 0;

  /// Floats of the backend-opaque pre-packed panel conv_weight_pack builds
  /// for the constant filter tensor of conv2d_gn_act_fwd, or 0 when the
  /// backend has no packed form for this geometry (callers then skip
  /// prepacking).  A panel is valid only for the exact geometry it was
  /// sized for and only on the backend that produced it.  Default: 0.
  virtual std::size_t conv_weight_pack_floats(const Conv2dGeom& g);

  /// Packs the [O, C, kh, kw] filter tensor `w` into `dst`
  /// (conv_weight_pack_floats(g) floats).  Only called when that size is
  /// non-zero.  Default: contract violation.
  virtual void conv_weight_pack(const Conv2dGeom& g, const float* w,
                                float* dst);

  /// conv2d_gn_act_fwd with the filters additionally supplied as a
  /// pre-packed panel from conv_weight_pack (`packed_w` may be null: then
  /// identical to conv2d_gn_act_fwd).  Results are bitwise identical with
  /// and without the panel; the panel only hoists per-call weight packing
  /// out of the GEMM.  `w` must still point at the raw filters (paths that
  /// do not consume the packed form read it).  Default: forwards to
  /// conv2d_gn_act_fwd, ignoring `packed_w`.
  virtual void conv2d_gn_act_fwd_packed(const Conv2dGeom& g, int groups,
                                        float eps, ActKind act, float slope,
                                        const float* x, const float* w,
                                        const float* packed_w,
                                        const float* bias, const float* gamma,
                                        const float* beta, float* y);
};

/// The active backend.  Defaults to the built-in CpuBackend; never null.
Backend& backend();

/// Installs `b` (not owned; must outlive its tenure) and returns the
/// previous backend so callers can restore it.  Not thread-safe against
/// concurrent kernel dispatch — swap only at quiescent points.
Backend* set_backend(Backend* b);

}  // namespace neurfill::nn
