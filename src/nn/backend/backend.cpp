#include "nn/backend/backend.hpp"

#include "common/check.hpp"
#include "nn/backend/cpu_backend.hpp"

namespace neurfill::nn {

namespace {

Backend*& active_backend() {
  // Function-local statics give a well-defined construction order even when
  // kernels run during static initialization of another translation unit.
  static CpuBackend cpu;
  static Backend* active = &cpu;
  return active;
}

}  // namespace

Backend& backend() { return *active_backend(); }

Backend* set_backend(Backend* b) {
  NF_CHECK(b != nullptr, "set_backend: null backend");
  Backend* prev = active_backend();
  active_backend() = b;
  return prev;
}

}  // namespace neurfill::nn
