#include "nn/backend/backend.hpp"

#include "common/check.hpp"
#include "nn/backend/cpu_backend.hpp"

namespace neurfill::nn {

namespace {

Backend*& active_backend() {
  // Function-local statics give a well-defined construction order even when
  // kernels run during static initialization of another translation unit.
  static CpuBackend cpu;
  static Backend* active = &cpu;
  return active;
}

}  // namespace

std::size_t Backend::conv_weight_pack_floats(const Conv2dGeom&) { return 0; }

void Backend::conv_weight_pack(const Conv2dGeom&, const float*, float*) {
  NF_CHECK(false,
           "conv_weight_pack: backend '%s' advertises no packed weight form",
           name());
}

void Backend::conv2d_gn_act_fwd_packed(const Conv2dGeom& g, int groups,
                                       float eps, ActKind act, float slope,
                                       const float* x, const float* w,
                                       const float* /*packed_w*/,
                                       const float* bias, const float* gamma,
                                       const float* beta, float* y) {
  conv2d_gn_act_fwd(g, groups, eps, act, slope, x, w, bias, gamma, beta, y);
}

Backend& backend() { return *active_backend(); }

Backend* set_backend(Backend* b) {
  NF_CHECK(b != nullptr, "set_backend: null backend");
  Backend* prev = active_backend();
  active_backend() = b;
  return prev;
}

}  // namespace neurfill::nn
