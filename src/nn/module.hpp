#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "nn/ops.hpp"
#include "nn/tensor.hpp"

namespace neurfill::nn {

/// Base class for trainable network components.  Parameters and submodules
/// are registered by name so optimizers and (de)serialization can walk the
/// whole tree with hierarchical names ("enc0.conv1.weight").
class Module {
 public:
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  Tensor operator()(const Tensor& x) { return forward(x); }

  /// All parameters of this module and its submodules, depth first, with
  /// dotted path names.
  std::vector<std::pair<std::string, Tensor>> named_parameters() const;
  std::vector<Tensor> parameters() const;
  std::int64_t parameter_count() const;
  void zero_grad();

  /// All submodules (recursively, excluding `this`), depth first, with
  /// dotted path names ("enc0.conv1").  Graph compilers (src/nn/infer) walk
  /// this to reconstruct the architecture without invoking the tape.
  std::vector<std::pair<std::string, const Module*>> named_modules() const;

 protected:
  Tensor register_parameter(const std::string& name, Tensor t);
  void register_module(const std::string& name, std::shared_ptr<Module> m);

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

/// 2-D convolution layer with He-normal initialization.
class Conv2d : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride,
         int padding, Rng& rng);
  Tensor forward(const Tensor& x) override;

  /// Hyperparameter / parameter access for graph compilation.  weight() is
  /// [O, C, k, k]; bias() is [O].
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  int stride() const { return stride_; }
  int padding() const { return padding_; }

 private:
  Tensor weight_, bias_;
  int stride_, padding_;
};

/// Group normalization layer (gamma=1, beta=0 at init).
class GroupNorm : public Module {
 public:
  GroupNorm(int channels, int groups);
  Tensor forward(const Tensor& x) override;

  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }
  int groups() const { return groups_; }

 private:
  Tensor gamma_, beta_;
  int groups_;
};

/// conv3x3 [-> GroupNorm] -> ReLU, twice: the standard UNet block.  The
/// normalization is optional (see UNetConfig::use_group_norm).
class DoubleConv : public Module {
 public:
  DoubleConv(int in_channels, int out_channels, Rng& rng,
             bool use_group_norm = true);
  Tensor forward(const Tensor& x) override;

 private:
  std::shared_ptr<Conv2d> conv1_, conv2_;
  std::shared_ptr<GroupNorm> norm1_, norm2_;  ///< null when norm disabled
};

}  // namespace neurfill::nn
