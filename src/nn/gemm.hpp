#pragma once

namespace neurfill::nn {

/// IMPLEMENTATION-INTERNAL.  These free functions are the CpuBackend's
/// kernels (src/nn/backend/cpu_gemm.cpp); everything outside src/nn must
/// reach them through the Backend interface (nn/backend/backend.hpp) —
/// `backend().gemm(...)` — so alternative backends can interpose.  The
/// declarations stay here only for the backend implementation and the
/// kernel benches/tests.
///
/// Single-precision GEMM kernels used by conv2d/linear.  Row-major
/// storage.  C (MxN) += A op * B op; `accumulate=false` overwrites C.
/// All three variants share one cache-blocked, register-tiled micro-kernel:
/// B is packed into Nr-wide column slivers and A into Mr-interleaved panels
/// (transposition is absorbed by the packing gather), K is split into
/// cache-resident slabs, and each (Mr x Nr) C tile is owned by exactly one
/// parallel block with k accumulated in ascending order — so results are
/// bitwise identical at every thread count.  See docs/runtime.md.

/// C = A(MxK) * B(KxN)
void gemm_nn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate);
/// C = A(MxK) * B(NxK)^T
void gemm_nt(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate);
/// C = A(KxM)^T * B(KxN)
void gemm_tn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate);

}  // namespace neurfill::nn
