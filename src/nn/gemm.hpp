#pragma once

namespace neurfill::nn {

/// Minimal single-precision GEMM kernels used by conv2d/linear.  Row-major
/// storage.  C (MxN) += A op * B op; `accumulate=false` overwrites C.
/// The loops are ordered i-k-j so the inner loop streams both B and C rows,
/// which auto-vectorizes well at -O2/-O3.

/// C = A(MxK) * B(KxN)
void gemm_nn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate);
/// C = A(MxK) * B(NxK)^T
void gemm_nt(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate);
/// C = A(KxM)^T * B(KxN)
void gemm_tn(int M, int N, int K, const float* A, const float* B, float* C,
             bool accumulate);

}  // namespace neurfill::nn
