#pragma once

#include "nn/module.hpp"

namespace neurfill::nn {

/// Configuration of the UNet surrogate (Fig. 4 of the paper).
struct UNetConfig {
  int in_channels = 6;    ///< layout-parameter matrix channels
  int out_channels = 1;   ///< post-CMP height profile
  int base_channels = 8;  ///< channels of the first encoder stage
  int depth = 3;          ///< number of down/up sampling stages
  /// Group normalization inside the conv blocks.  Off by default: for this
  /// smooth regression task the normalization's scale invariance slows
  /// convergence more than it stabilizes (measured in the ablation bench).
  bool use_group_norm = false;
};

/// UNet [Ronneberger 2015]: an encoder path that halves resolution and
/// doubles channels per stage, a bottleneck, and a decoder path of
/// nearest-neighbour upsampling + conv with skip concatenations.  Input H/W
/// must be divisible by 2^depth.
class UNet : public Module {
 public:
  UNet(const UNetConfig& config, Rng& rng);

  Tensor forward(const Tensor& x) override;

  const UNetConfig& config() const { return config_; }

 private:
  UNetConfig config_;
  std::vector<std::shared_ptr<DoubleConv>> enc_;
  std::shared_ptr<DoubleConv> bottleneck_;
  std::vector<std::shared_ptr<Conv2d>> up_;       ///< post-upsample 3x3 convs
  std::vector<std::shared_ptr<DoubleConv>> dec_;  ///< after skip concat
  std::shared_ptr<Conv2d> head_;                  ///< 1x1 output conv
};

}  // namespace neurfill::nn
