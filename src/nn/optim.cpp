#include "nn/optim.hpp"

#include <cmath>

namespace neurfill::nn {

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i)
    velocity_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0f);
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad();
    float* d = p.data();
    float* v = velocity_[i].data();
    const std::int64_t n = p.numel();
    for (std::int64_t k = 0; k < n; ++k) {
      v[k] = momentum_ * v[k] + g[k];
      d[k] -= lr_ * v[k];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0f);
    v_[i].assign(static_cast<std::size_t>(params_[i].numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad();
    float* d = p.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::int64_t n = p.numel();
    for (std::int64_t k = 0; k < n; ++k) {
      m[k] = beta1_ * m[k] + (1.0f - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0f - beta2_) * g[k] * g[k];
      const double mhat = static_cast<double>(m[k]) / bc1;
      const double vhat = static_cast<double>(v[k]) / bc2;
      d[k] -= static_cast<float>(static_cast<double>(lr_) * mhat /
                                 (std::sqrt(vhat) + static_cast<double>(eps_)));
    }
  }
}

}  // namespace neurfill::nn
