# Header self-containment check (the header-self-containment contract in
# docs/static_analysis.md).
#
# Generates one translation unit per public header under src/ — each TU is
# just `#include "<header>"` — and compiles them all into an OBJECT library.
# A header that silently leans on whatever its usual includer happened to
# pull in first fails this target, so "compiles in isolation" becomes a
# build-enforced invariant instead of a convention.  The TUs are only
# compiled, never linked, so headers declaring out-of-line symbols are fine.
#
# Usage (top-level CMakeLists.txt):
#   include(HeaderSelfCheck)
#   neurfill_add_header_self_check(nf_headercheck)

function(neurfill_add_header_self_check target)
  file(GLOB_RECURSE _nf_headers RELATIVE ${CMAKE_SOURCE_DIR}/src
       CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/src/*.hpp)
  set(_nf_tus)
  foreach(_nf_header IN LISTS _nf_headers)
    string(REPLACE "/" "_" _nf_stem ${_nf_header})
    string(REGEX REPLACE "\\.hpp$" "" _nf_stem ${_nf_stem})
    set(_nf_tu ${CMAKE_BINARY_DIR}/headercheck/${_nf_stem}.cpp)
    set(_nf_body "#include \"${_nf_header}\"  // IWYU pragma: keep\n")
    # Rewrite the stub only when its content changes so an untouched
    # configure run does not dirty every headercheck object.
    set(_nf_existing "")
    if(EXISTS ${_nf_tu})
      file(READ ${_nf_tu} _nf_existing)
    endif()
    if(NOT _nf_existing STREQUAL _nf_body)
      file(WRITE ${_nf_tu} ${_nf_body})
    endif()
    list(APPEND _nf_tus ${_nf_tu})
  endforeach()
  add_library(${target} OBJECT EXCLUDE_FROM_ALL ${_nf_tus})
  target_include_directories(${target} PRIVATE ${CMAKE_SOURCE_DIR}/src)
  target_link_libraries(${target} PRIVATE Threads::Threads)
endfunction()
