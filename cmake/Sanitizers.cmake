# Sanitizer wiring for NeurFill.
#
# Configure with a semicolon-separated list, e.g.
#   cmake -B build -S . -DNEURFILL_SANITIZE="address;undefined"
#   cmake -B build -S . -DNEURFILL_SANITIZE=thread
#
# Supported: address, undefined, leak, thread.  ThreadSanitizer cannot be
# combined with AddressSanitizer or LeakSanitizer.  UBSan is configured with
# -fno-sanitize-recover so any report aborts the process and fails ctest
# instead of scrolling past.

set(NEURFILL_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizer list: address, undefined, leak, thread")

if(NEURFILL_SANITIZE)
  set(_nf_san_flags "")
  set(_nf_san_thread FALSE)
  set(_nf_san_addr_or_leak FALSE)
  foreach(_nf_san IN LISTS NEURFILL_SANITIZE)
    if(_nf_san STREQUAL "address" OR _nf_san STREQUAL "leak")
      set(_nf_san_addr_or_leak TRUE)
    elseif(_nf_san STREQUAL "thread")
      set(_nf_san_thread TRUE)
    elseif(NOT _nf_san STREQUAL "undefined")
      message(FATAL_ERROR
          "NEURFILL_SANITIZE: unknown sanitizer '${_nf_san}' "
          "(expected address, undefined, leak, or thread)")
    endif()
    list(APPEND _nf_san_flags "-fsanitize=${_nf_san}")
  endforeach()

  if(_nf_san_thread AND _nf_san_addr_or_leak)
    message(FATAL_ERROR
        "NEURFILL_SANITIZE: 'thread' cannot be combined with "
        "'address' or 'leak'")
  endif()

  add_compile_options(${_nf_san_flags}
                      -fno-omit-frame-pointer
                      -fno-sanitize-recover=all)
  add_link_options(${_nf_san_flags})
  message(STATUS "NeurFill: sanitizers enabled: ${NEURFILL_SANITIZE}")
endif()
